#include "partition/conflict.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "models/diffusion.hpp"
#include "models/zgb.hpp"
#include "partition/partition.hpp"

namespace casurf {
namespace {

std::set<Vec2> as_set(const std::vector<Vec2>& v) { return {v.begin(), v.end()}; }

std::set<Vec2> l1_ball_without_origin(int radius) {
  std::set<Vec2> out;
  for (int x = -radius; x <= radius; ++x) {
    for (int y = -radius; y <= radius; ++y) {
      if ((x != 0 || y != 0) && std::abs(x) + std::abs(y) <= radius) {
        out.insert(Vec2{x, y});
      }
    }
  }
  return out;
}

TEST(ConflictOffsets, SingleSiteModelHasNone) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("flip", 1.0, {exact({0, 0}, 0, 1)}));
  EXPECT_TRUE(conflict_offsets(m).empty());
}

TEST(ConflictOffsets, ZgbIsL1BallRadiusTwo) {
  // Paper Fig 5: all reaction patterns are von Neumann pairs, so anchors
  // conflict exactly within L1 distance 2 — 12 offsets.
  auto zgb = models::make_zgb();
  const auto offsets = as_set(conflict_offsets(zgb.model));
  EXPECT_EQ(offsets, l1_ball_without_origin(2));
  EXPECT_EQ(offsets.size(), 12u);
}

TEST(ConflictOffsets, DiffusionSameAsZgb) {
  auto diff = models::make_diffusion();
  EXPECT_EQ(as_set(conflict_offsets(diff.model)), l1_ball_without_origin(2));
}

TEST(ConflictOffsets, SymmetricByConstruction) {
  auto zgb = models::make_zgb();
  const auto offsets = conflict_offsets(zgb.model);
  const auto set = as_set(offsets);
  for (const Vec2 d : offsets) EXPECT_TRUE(set.contains(-d));
}

TEST(ConflictOffsets, ReadWritePolicyIsSubsetOfFull) {
  // A model with a read-only neighbor precondition: the relaxed policy must
  // produce no more offsets than the full-neighborhood rule.
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("assisted", 1.0,
                     {exact({0, 0}, 0, 1), require({1, 0}, species_bit(1)),
                      require({-1, 0}, species_bit(1))}));
  const auto full = as_set(conflict_offsets(m, ConflictPolicy::kFullNeighborhood));
  const auto rw = as_set(conflict_offsets(m, ConflictPolicy::kReadWrite));
  EXPECT_TRUE(std::ranges::includes(full, rw));
  EXPECT_LT(rw.size(), full.size());
  // The +-(2,0) offsets arise only from read/read pairs (the two
  // preconditions of anchors two apart touching the same site), so they
  // vanish under kReadWrite; the write-read overlaps at +-(1,0) remain.
  EXPECT_FALSE(rw.contains(Vec2{2, 0}));
  EXPECT_TRUE(full.contains(Vec2{2, 0}));
  EXPECT_TRUE(rw.contains(Vec2{1, 0}));
}

TEST(SelfConflictOffsets, PairTypeIsPlusMinusBond) {
  const ReactionType rt("pair", 1.0, {exact({0, 0}, 0, 1), exact({1, 0}, 0, 1)});
  EXPECT_EQ(as_set(self_conflict_offsets(rt)),
            (std::set<Vec2>{{-1, 0}, {1, 0}}));
}

TEST(SelfConflictOffsets, SingleSiteIsEmpty) {
  const ReactionType rt("one", 1.0, {exact({0, 0}, 0, 1)});
  EXPECT_TRUE(self_conflict_offsets(rt).empty());
}

TEST(VerifyPartition, Fig4FiveColoringIsValidForZgb) {
  auto zgb = models::make_zgb();
  const auto offsets = conflict_offsets(zgb.model);
  const Partition p = Partition::linear_form(Lattice(10, 10), 1, 3, 5);
  EXPECT_TRUE(verify_partition(p, offsets));
}

TEST(VerifyPartition, CheckerboardIsInvalidForZgb) {
  // Two chunks cannot separate L1-distance-2 conflicts: (1,1) is a
  // conflict offset but preserves checkerboard parity.
  auto zgb = models::make_zgb();
  const auto offsets = conflict_offsets(zgb.model);
  const Partition p = Partition::linear_form(Lattice(10, 10), 1, 1, 2);
  EXPECT_FALSE(verify_partition(p, offsets));
}

TEST(VerifyPartition, SingleChunkInvalidUnlessNoConflicts) {
  auto zgb = models::make_zgb();
  const auto offsets = conflict_offsets(zgb.model);
  EXPECT_FALSE(verify_partition(Partition::single_chunk(Lattice(8, 8)), offsets));
  EXPECT_TRUE(verify_partition(Partition::single_chunk(Lattice(8, 8)), {}));
}

TEST(VerifyPartition, SingletonsAlwaysValid) {
  auto zgb = models::make_zgb();
  const auto offsets = conflict_offsets(zgb.model);
  EXPECT_TRUE(verify_partition(Partition::singletons(Lattice(8, 8)), offsets));
}

TEST(VerifyPartition, WrapAroundConflictsDetected) {
  // Valid in the bulk but broken across the periodic seam: a 5-coloring on
  // a width-6 lattice (1*6 % 5 != 0 — construct manually by truncating).
  const Lattice lat(6, 5);
  std::vector<ChunkId> assign(lat.size());
  for (std::int32_t y = 0; y < 5; ++y) {
    for (std::int32_t x = 0; x < 6; ++x) {
      assign[lat.index({x, y})] = static_cast<ChunkId>((x + 3 * y) % 5);
    }
  }
  const Partition p(lat, std::move(assign));
  auto zgb = models::make_zgb();
  EXPECT_FALSE(verify_partition(p, conflict_offsets(zgb.model)));
}

}  // namespace
}  // namespace casurf
