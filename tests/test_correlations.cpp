#include "stats/correlations.hpp"

#include <gtest/gtest.h>

namespace casurf::stats {
namespace {

TEST(BondFraction, UniformLatticeIsAllSameSpecies) {
  const Configuration cfg(Lattice(6, 6), 2, 1);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 0), 0.0);
}

TEST(BondFraction, CheckerboardIsAllMixedBonds) {
  Configuration cfg(Lattice(6, 6), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    const Vec2 p = cfg.lattice().coord(s);
    if ((p.x + p.y) % 2 == 0) cfg.set(s, 1);
  }
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 1, 1), 0.0);
}

TEST(BondFraction, StripePattern) {
  // Vertical stripes of width 1 on a 4-wide lattice: columns 0,2 species
  // 1, columns 1,3 species 0. All +x bonds mixed, all +y bonds same.
  Configuration cfg(Lattice(4, 4), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    if (cfg.lattice().coord(s).x % 2 == 0) cfg.set(s, 1);
  }
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 1), 0.5);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 1, 1), 0.25);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 0), 0.25);
}

TEST(PairCorrelation, CheckerboardAntiCorrelated) {
  Configuration cfg(Lattice(6, 6), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    const Vec2 p = cfg.lattice().coord(s);
    if ((p.x + p.y) % 2 == 0) cfg.set(s, 1);
  }
  // theta = 0.5 each: random mixed-bond probability is 0.5; actual is 1.
  EXPECT_DOUBLE_EQ(pair_correlation(cfg, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(pair_correlation(cfg, 1, 1), 0.0);
}

TEST(PairCorrelation, PhaseSeparatedClusters) {
  // Two half-lattice blocks: same-species bonds dominate.
  Configuration cfg(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    if (cfg.lattice().coord(s).x < 4) cfg.set(s, 1);
  }
  EXPECT_GT(pair_correlation(cfg, 1, 1), 1.4);
  EXPECT_LT(pair_correlation(cfg, 0, 1), 0.6);
}

TEST(PairCorrelation, ZeroCoverageIsZero) {
  const Configuration cfg(Lattice(4, 4), 3, 0);
  EXPECT_DOUBLE_EQ(pair_correlation(cfg, 1, 2), 0.0);
}

TEST(AxialCorrelation, PerfectAtZeroDistance) {
  Configuration cfg(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < 32; ++s) cfg.set(s, 1);
  EXPECT_DOUBLE_EQ(axial_correlation(cfg, 1, 0), 1.0);
}

TEST(AxialCorrelation, StripesAlternateSign) {
  // Width-2 vertical stripes: same species at even distances, opposite at
  // odd ones... with stripe period 4: r=4 perfectly correlated, r=2
  // perfectly anti-correlated.
  Configuration cfg(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    if (cfg.lattice().coord(s).x % 4 < 2) cfg.set(s, 1);
  }
  EXPECT_DOUBLE_EQ(axial_correlation(cfg, 1, 4), 1.0);
  EXPECT_DOUBLE_EQ(axial_correlation(cfg, 1, 2), -1.0);
}

TEST(AxialCorrelation, DegenerateCoverages) {
  const Configuration empty(Lattice(4, 4), 2, 0);
  EXPECT_DOUBLE_EQ(axial_correlation(empty, 1, 1), 0.0);
  const Configuration full(Lattice(4, 4), 2, 1);
  EXPECT_DOUBLE_EQ(axial_correlation(full, 1, 1), 0.0);
}

}  // namespace
}  // namespace casurf::stats
