#include "stats/correlations.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace casurf::stats {
namespace {

TEST(BondFraction, UniformLatticeIsAllSameSpecies) {
  const Configuration cfg(Lattice(6, 6), 2, 1);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 0), 0.0);
}

TEST(BondFraction, CheckerboardIsAllMixedBonds) {
  Configuration cfg(Lattice(6, 6), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    const Vec2 p = cfg.lattice().coord(s);
    if ((p.x + p.y) % 2 == 0) cfg.set(s, 1);
  }
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 1, 1), 0.0);
}

TEST(BondFraction, StripePattern) {
  // Vertical stripes of width 1 on a 4-wide lattice: columns 0,2 species
  // 1, columns 1,3 species 0. All +x bonds mixed, all +y bonds same.
  Configuration cfg(Lattice(4, 4), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    if (cfg.lattice().coord(s).x % 2 == 0) cfg.set(s, 1);
  }
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 1), 0.5);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 1, 1), 0.25);
  EXPECT_DOUBLE_EQ(bond_fraction(cfg, 0, 0), 0.25);
}

TEST(PairCorrelation, CheckerboardAntiCorrelated) {
  Configuration cfg(Lattice(6, 6), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    const Vec2 p = cfg.lattice().coord(s);
    if ((p.x + p.y) % 2 == 0) cfg.set(s, 1);
  }
  // theta = 0.5 each: random mixed-bond probability is 0.5; actual is 1.
  EXPECT_DOUBLE_EQ(pair_correlation(cfg, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(pair_correlation(cfg, 1, 1), 0.0);
}

TEST(PairCorrelation, PhaseSeparatedClusters) {
  // Two half-lattice blocks: same-species bonds dominate.
  Configuration cfg(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    if (cfg.lattice().coord(s).x < 4) cfg.set(s, 1);
  }
  EXPECT_GT(pair_correlation(cfg, 1, 1), 1.4);
  EXPECT_LT(pair_correlation(cfg, 0, 1), 0.6);
}

TEST(PairCorrelation, ZeroCoverageIsZero) {
  const Configuration cfg(Lattice(4, 4), 3, 0);
  EXPECT_DOUBLE_EQ(pair_correlation(cfg, 1, 2), 0.0);
}

TEST(AxialCorrelation, PerfectAtZeroDistance) {
  Configuration cfg(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < 32; ++s) cfg.set(s, 1);
  EXPECT_DOUBLE_EQ(axial_correlation(cfg, 1, 0), 1.0);
}

TEST(AxialCorrelation, StripesAlternateSign) {
  // Width-2 vertical stripes: same species at even distances, opposite at
  // odd ones... with stripe period 4: r=4 perfectly correlated, r=2
  // perfectly anti-correlated.
  Configuration cfg(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    if (cfg.lattice().coord(s).x % 4 < 2) cfg.set(s, 1);
  }
  EXPECT_DOUBLE_EQ(axial_correlation(cfg, 1, 4), 1.0);
  EXPECT_DOUBLE_EQ(axial_correlation(cfg, 1, 2), -1.0);
}

TEST(AxialCorrelation, DegenerateCoverages) {
  const Configuration empty(Lattice(4, 4), 2, 0);
  EXPECT_DOUBLE_EQ(axial_correlation(empty, 1, 1), 0.0);
  const Configuration full(Lattice(4, 4), 2, 1);
  EXPECT_DOUBLE_EQ(axial_correlation(full, 1, 1), 0.0);
}

TEST(AxialCorrelationY, VerticalStripesAreConstantAlongY) {
  // Vertical width-1 stripes: the occupation never changes along +y, so
  // c^y(r) = 1 at every distance, while c^x alternates sign.
  Configuration cfg(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    if (cfg.lattice().coord(s).x % 2 == 0) cfg.set(s, 1);
  }
  EXPECT_DOUBLE_EQ(axial_correlation_y(cfg, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(axial_correlation_y(cfg, 1, 3), 1.0);
  EXPECT_DOUBLE_EQ(axial_correlation(cfg, 1, 1), -1.0);
  // The axis average cancels exactly: (−1 + 1) / 2.
  EXPECT_DOUBLE_EQ(axial_correlation_xy(cfg, 1, 1), 0.0);
}

TEST(AxialCorrelationY, TransposeSymmetry) {
  // c^y on a pattern equals c^x on its transpose.
  Configuration cfg(Lattice(6, 6), 2, 0);
  Configuration t(Lattice(6, 6), 2, 0);
  std::uint64_t lcg = 12345;
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((lcg >> 60) % 2 == 0) {
      const Vec2 p = cfg.lattice().coord(s);
      cfg.set(s, 1);
      t.set(t.lattice().index({p.y, p.x}), 1);
    }
  }
  for (std::int32_t r = 0; r <= 3; ++r) {
    EXPECT_DOUBLE_EQ(axial_correlation_y(cfg, 1, r), axial_correlation(t, 1, r))
        << "r = " << r;
  }
}

TEST(PairIndex, PacksUpperTriangleRowMajor) {
  static_assert(pair_count(1) == 1);
  static_assert(pair_count(2) == 3);
  static_assert(pair_count(3) == 6);
  EXPECT_EQ(pair_index(3, 0, 0), 0u);
  EXPECT_EQ(pair_index(3, 0, 1), 1u);
  EXPECT_EQ(pair_index(3, 0, 2), 2u);
  EXPECT_EQ(pair_index(3, 1, 1), 3u);
  EXPECT_EQ(pair_index(3, 1, 2), 4u);
  EXPECT_EQ(pair_index(3, 2, 2), 5u);
  // Order-insensitive: {a, b} is unordered.
  EXPECT_EQ(pair_index(3, 2, 1), pair_index(3, 1, 2));
}

TEST(CorrelationMatrices, HandComputedFourByFourFixture) {
  // 4x4, three species, rows 0-1 species 1 and rows 2-3 species 2. Of the
  // 32 bonds: 16 +x bonds all same-species (8 of each), and the 16 +y
  // bonds split 4:4:4:4 over (1,1), (1,2), (2,2), (2,1)-wrap. So
  //   f_11 = f_22 = 12/32 = 0.375, f_12 = 8/32 = 0.25, everything with
  //   the absent species 0 is 0.
  Configuration cfg(Lattice(4, 4), 3, 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    cfg.set(s, cfg.lattice().coord(s).y < 2 ? 1 : 2);
  }
  const std::vector<double> bf = bond_fraction_matrix(cfg);
  ASSERT_EQ(bf.size(), pair_count(3));
  EXPECT_DOUBLE_EQ(bf[pair_index(3, 0, 0)], 0.0);
  EXPECT_DOUBLE_EQ(bf[pair_index(3, 0, 1)], 0.0);
  EXPECT_DOUBLE_EQ(bf[pair_index(3, 0, 2)], 0.0);
  EXPECT_DOUBLE_EQ(bf[pair_index(3, 1, 1)], 0.375);
  EXPECT_DOUBLE_EQ(bf[pair_index(3, 1, 2)], 0.25);
  EXPECT_DOUBLE_EQ(bf[pair_index(3, 2, 2)], 0.375);

  // theta_1 = theta_2 = 0.5: random mixing predicts 0.25 same / 0.5 mixed,
  // so g_11 = g_22 = 1.5 and g_12 = 0.5; pairs with theta = 0 stay 0.
  const std::vector<double> g = pair_correlation_matrix(cfg);
  ASSERT_EQ(g.size(), pair_count(3));
  EXPECT_DOUBLE_EQ(g[pair_index(3, 0, 0)], 0.0);
  EXPECT_DOUBLE_EQ(g[pair_index(3, 0, 1)], 0.0);
  EXPECT_DOUBLE_EQ(g[pair_index(3, 1, 1)], 1.5);
  EXPECT_DOUBLE_EQ(g[pair_index(3, 1, 2)], 0.5);
  EXPECT_DOUBLE_EQ(g[pair_index(3, 2, 2)], 1.5);
}

TEST(CorrelationMatrices, MatchPerPairFunctions) {
  // The one-pass matrices must agree exactly with the per-pair functions.
  Configuration cfg(Lattice(6, 6), 3, 0);
  std::uint64_t lcg = 99;
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    cfg.set(s, static_cast<Species>((lcg >> 59) % 3));
  }
  const std::vector<double> bf = bond_fraction_matrix(cfg);
  const std::vector<double> g = pair_correlation_matrix(cfg);
  for (Species a = 0; a < 3; ++a) {
    for (Species b = a; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(bf[pair_index(3, a, b)], bond_fraction(cfg, a, b));
      EXPECT_DOUBLE_EQ(g[pair_index(3, a, b)], pair_correlation(cfg, a, b));
    }
  }
}

TEST(CorrelationMatrices, SingleSpeciesFullCoverage) {
  // Full single-species coverage: every bond is (0,0), and the pair
  // correlation is exactly the random-mixing value 1.
  const Configuration cfg(Lattice(4, 4), 1, 0);
  const std::vector<double> bf = bond_fraction_matrix(cfg);
  ASSERT_EQ(bf.size(), 1u);
  EXPECT_DOUBLE_EQ(bf[0], 1.0);
  EXPECT_DOUBLE_EQ(pair_correlation_matrix(cfg)[0], 1.0);
}

TEST(AxialDecayLength, DegenerateCoveragesAndRadius) {
  const Configuration empty(Lattice(8, 8), 2, 0);
  EXPECT_DOUBLE_EQ(axial_decay_length(empty, 1, 8), 0.0);
  const Configuration full(Lattice(8, 8), 2, 1);
  EXPECT_DOUBLE_EQ(axial_decay_length(full, 1, 8), 0.0);
  Configuration half(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < half.size(); ++s) {
    if (half.lattice().coord(s).x < 4) half.set(s, 1);
  }
  EXPECT_DOUBLE_EQ(axial_decay_length(half, 1, 0), 0.0);  // max_r < 1
}

TEST(AxialDecayLength, ClustersDecaySlowerThanStripes) {
  // A half-lattice block has positive short-range correlation: xi > 0.
  Configuration half(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < half.size(); ++s) {
    if (half.lattice().coord(s).x < 4) half.set(s, 1);
  }
  EXPECT_GT(axial_decay_length(half, 1, 4), 0.0);
  // Width-1 stripes: c^xy(1) = 0, so the sum truncates immediately.
  Configuration stripes(Lattice(8, 8), 2, 0);
  for (SiteIndex s = 0; s < stripes.size(); ++s) {
    if (stripes.lattice().coord(s).x % 2 == 0) stripes.set(s, 1);
  }
  EXPECT_DOUBLE_EQ(axial_decay_length(stripes, 1, 4), 0.0);
}

}  // namespace
}  // namespace casurf::stats
