#include "stats/coverage.hpp"

#include <gtest/gtest.h>

#include "dmc/rsm.hpp"
#include "models/zgb.hpp"

namespace casurf {
namespace {

ReactionModel ads_model() {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));
  return m;
}

TEST(CoverageRecorder, RecordsOnSamplingGrid) {
  const ReactionModel m = ads_model();
  RsmSimulator sim(m, Configuration(Lattice(16, 16), 2, 0), 1);
  CoverageRecorder rec({1});
  run_sampled(sim, 5.0, 1.0, rec);
  const TimeSeries& ts = rec.series(1);
  ASSERT_GE(ts.size(), 5u);
  EXPECT_DOUBLE_EQ(ts.time(0), 0.0);
  EXPECT_DOUBLE_EQ(ts.value(0), 0.0);
  // Irreversible adsorption: coverage is non-decreasing.
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_GE(ts.value(i), ts.value(i - 1));
  }
  EXPECT_GT(ts.values().back(), 0.9);  // t=5 >> 1/k: nearly full
}

TEST(CoverageRecorder, TracksAllSpeciesByDefault) {
  auto zgb = models::make_zgb();
  RsmSimulator sim(zgb.model, Configuration(Lattice(8, 8), 3, zgb.vacant), 2);
  CoverageRecorder rec;
  run_sampled(sim, 2.0, 0.5, rec);
  EXPECT_EQ(rec.tracked().size(), 3u);
  // Coverages sum to one at every sample.
  const auto& vac = rec.series(zgb.vacant);
  for (std::size_t i = 0; i < vac.size(); ++i) {
    const double sum = rec.series(zgb.vacant).value(i) +
                       rec.series(zgb.co).value(i) + rec.series(zgb.o).value(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(CoverageRecorder, CombinedSumsGroups) {
  auto zgb = models::make_zgb();
  RsmSimulator sim(zgb.model, Configuration(Lattice(8, 8), 3, zgb.vacant), 3);
  CoverageRecorder rec;
  run_sampled(sim, 2.0, 0.5, rec);
  const TimeSeries total = rec.combined({zgb.vacant, zgb.co, zgb.o});
  for (std::size_t i = 0; i < total.size(); ++i) {
    EXPECT_NEAR(total.value(i), 1.0, 1e-12);
  }
}

TEST(CoverageRecorder, UntrackedSpeciesThrows) {
  const ReactionModel m = ads_model();
  RsmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 4);
  CoverageRecorder rec({0});
  rec.sample(sim);
  EXPECT_THROW((void)rec.series(1), std::out_of_range);
}

TEST(CoverageRecorder, DuplicateTimeSamplesDropped) {
  const ReactionModel m = ads_model();
  RsmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 5);
  CoverageRecorder rec({1});
  rec.sample(sim);
  rec.sample(sim);  // same t = 0 again: must not throw or duplicate
  EXPECT_EQ(rec.series(1).size(), 1u);
}

TEST(RunSampled, RejectsNonPositiveDt) {
  const ReactionModel m = ads_model();
  RsmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 6);
  CoverageRecorder rec;
  EXPECT_THROW(run_sampled(sim, 1.0, 0.0, rec), std::invalid_argument);
}

}  // namespace
}  // namespace casurf
