#include "stats/csv.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace casurf {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  // PID-suffixed: ctest -j runs each test case as its own concurrent
  // process, so a fixed name would be clobbered by sibling cases.
  std::string path_ = ::testing::TempDir() + "casurf_csv_test." +
                      std::to_string(::getpid()) + ".csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  stats::write_csv(path_, {"a", "b"}, {{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(slurp(path_), "a,b\n1,4\n2,5\n3,6\n");
}

TEST_F(CsvTest, RaggedColumnsLeaveBlanks) {
  stats::write_csv(path_, {"x", "y"}, {{1}, {2, 3}});
  EXPECT_EQ(slurp(path_), "x,y\n1,2\n,3\n");
}

TEST_F(CsvTest, HeaderColumnMismatchThrows) {
  EXPECT_THROW(stats::write_csv(path_, {"only"}, {{1}, {2}}), std::invalid_argument);
}

TEST_F(CsvTest, BadPathThrows) {
  EXPECT_THROW(stats::write_csv("/nonexistent_dir_zzz/file.csv", {"a"}, {{1}}),
               std::runtime_error);
}

TEST_F(CsvTest, SeriesShareTimeColumn) {
  const TimeSeries a({0.0, 1.0}, {10.0, 11.0});
  const TimeSeries b({0.0, 1.0}, {20.0, 21.0});
  stats::write_csv_series(path_, {"co", "o"}, {a, b});
  EXPECT_EQ(slurp(path_), "time,co,o\n0,10,20\n1,11,21\n");
}

TEST_F(CsvTest, SeriesValidation) {
  const TimeSeries a({0.0, 1.0}, {1.0, 2.0});
  EXPECT_THROW(stats::write_csv_series(path_, {"one", "two"}, {a}),
               std::invalid_argument);
  EXPECT_THROW(stats::write_csv_series(path_, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace casurf
