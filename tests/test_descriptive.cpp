#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace casurf {
namespace {

TEST(Descriptive, Mean) {
  EXPECT_DOUBLE_EQ(stats::mean({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_THROW((void)stats::mean({}), std::invalid_argument);
}

TEST(Descriptive, VarianceIsSampleVariance) {
  EXPECT_DOUBLE_EQ(stats::variance({1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(stats::stddev({1.0, 2.0, 3.0}), 1.0);
  EXPECT_THROW((void)stats::variance({1.0}), std::invalid_argument);
}

TEST(Descriptive, AutocorrelationLagZeroIsOne) {
  const std::vector<double> v = {1.0, 3.0, 2.0, 5.0, 4.0, 6.0};
  EXPECT_NEAR(stats::autocorrelation(v, 0), 1.0, 1e-12);
}

TEST(Descriptive, AutocorrelationOfAlternatingSignal) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 2 ? 1.0 : -1.0);
  EXPECT_LT(stats::autocorrelation(v, 1), -0.9);
  EXPECT_GT(stats::autocorrelation(v, 2), 0.9);
}

TEST(Descriptive, AutocorrelationPeriodicSignal) {
  std::vector<double> v;
  for (int i = 0; i < 400; ++i) {
    v.push_back(std::sin(2 * std::numbers::pi * i / 20.0));
  }
  EXPECT_GT(stats::autocorrelation(v, 20), 0.8);   // one full period
  EXPECT_LT(stats::autocorrelation(v, 10), -0.8);  // half period
}

TEST(Descriptive, AutocorrelationTooShortThrows) {
  EXPECT_THROW((void)stats::autocorrelation({1.0, 2.0}, 5), std::invalid_argument);
}

TEST(Descriptive, CorrelationPerfectAndInverse) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> c = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(stats::correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(stats::correlation(a, c), -1.0, 1e-12);
}

TEST(Descriptive, CorrelationOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(stats::correlation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Descriptive, CorrelationSizeMismatchThrows) {
  EXPECT_THROW((void)stats::correlation({1.0, 2.0}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace casurf
