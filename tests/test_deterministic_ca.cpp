#include "ca/deterministic_ca.hpp"

#include <gtest/gtest.h>

namespace casurf {
namespace {

TEST(DeterministicCa, NullRuleThrows) {
  EXPECT_THROW(DeterministicCA(Configuration(Lattice(3, 3), 2, 0), nullptr),
               std::invalid_argument);
}

TEST(DeterministicCa, ShiftRuleProvesSynchronousUpdate) {
  // new(s) = old(s - (1,0)): a pure shift. Sequential in-place update would
  // smear a single seed across the whole row; a synchronous update moves it
  // exactly one cell per step.
  Configuration cfg(Lattice(8, 1), 2, 0);
  cfg.set(Vec2{2, 0}, 1);
  DeterministicCA ca(cfg, [](const Configuration& c, SiteIndex s) {
    return c.get(c.lattice().coord(s) - Vec2{1, 0});
  });
  ca.step();
  EXPECT_EQ(ca.configuration().get(Vec2{3, 0}), 1);
  EXPECT_EQ(ca.configuration().count(1), 1u);
  ca.run(5);
  EXPECT_EQ(ca.configuration().get(Vec2{0, 0}), 1);  // wrapped around
  EXPECT_EQ(ca.steps_done(), 6u);
}

TEST(DeterministicCa, MajorityRuleReachesFixedPoint) {
  // 1D majority-of-three: alternating stripes of length >= 2 are stable.
  Configuration cfg(Lattice(12, 1), 2, 0);
  for (std::int32_t x = 0; x < 6; ++x) cfg.set(Vec2{x, 0}, 1);
  const CaRule majority = [](const Configuration& c, SiteIndex s) -> Species {
    const Vec2 p = c.lattice().coord(s);
    const int sum = c.get(p - Vec2{1, 0}) + c.get(p) + c.get(p + Vec2{1, 0});
    return sum >= 2 ? 1 : 0;
  };
  DeterministicCA ca(cfg, majority);
  ca.step();
  const Configuration after_one = ca.configuration();
  ca.step();
  EXPECT_EQ(ca.configuration(), after_one);  // fixed point
}

TEST(DeterministicCa, AllSitesUpdatedEveryStep) {
  // Rule "increment mod 3" touches every site each step.
  Configuration cfg(Lattice(4, 4), 3, 0);
  DeterministicCA ca(cfg, [](const Configuration& c, SiteIndex s) {
    return static_cast<Species>((c.get(s) + 1) % 3);
  });
  ca.step();
  for (SiteIndex s = 0; s < ca.configuration().size(); ++s) {
    EXPECT_EQ(ca.configuration().get(s), 1);
  }
  ca.run(2);
  for (SiteIndex s = 0; s < ca.configuration().size(); ++s) {
    EXPECT_EQ(ca.configuration().get(s), 0);
  }
}

TEST(DeterministicCa, TwoDimensionalNeighborhoodRule) {
  // "Becomes occupied if any von Neumann neighbor is occupied" — one seed
  // grows as a diamond (L1 ball), the CA analogue of the paper's Fig 3 rule
  // inverted.
  Configuration cfg(Lattice(9, 9), 2, 0);
  cfg.set(Vec2{4, 4}, 1);
  DeterministicCA ca(cfg, [](const Configuration& c, SiteIndex s) -> Species {
    if (c.get(s) == 1) return 1;
    const Vec2 p = c.lattice().coord(s);
    for (const Vec2 d : Lattice::von_neumann_offsets()) {
      if (c.get(p + d) == 1) return 1;
    }
    return 0;
  });
  ca.run(2);
  // After 2 steps, exactly the sites within L1 distance 2: 1+4+8 = 13.
  EXPECT_EQ(ca.configuration().count(1), 13u);
  EXPECT_EQ(ca.configuration().get(Vec2{4, 2}), 1);
  EXPECT_EQ(ca.configuration().get(Vec2{6, 4}), 1);
  EXPECT_EQ(ca.configuration().get(Vec2{6, 6}), 0);  // L1 distance 4
}

}  // namespace
}  // namespace casurf
