// Cross-validation of the three exact DMC methods against each other and
// against the Segers correctness criteria (paper section 6): identical
// Master Equation kinetics must emerge from RSM, VSSM and FRM despite their
// very different mechanics.

#include <gtest/gtest.h>

#include <vector>

#include "core/observer.hpp"
#include "dmc/frm.hpp"
#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"
#include "models/zgb.hpp"
#include "stats/coverage.hpp"
#include "stats/ks.hpp"
#include "stats/timeseries.hpp"

namespace casurf {
namespace {

TEST(DmcAgreement, ZgbCoverageTrajectoriesMatch) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(48, 48);
  const double t_end = 12.0;

  const auto run = [&](auto make) {
    std::vector<TimeSeries> runs;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto sim = make(seed);
      CoverageRecorder rec({zgb.o});
      run_sampled(*sim, t_end, 0.5, rec);
      runs.push_back(rec.series(zgb.o));
    }
    return ensemble_mean(runs, 100);
  };

  const TimeSeries rsm = run([&](std::uint64_t seed) {
    return std::make_unique<RsmSimulator>(zgb.model, Configuration(lat, 3, zgb.vacant),
                                          seed);
  });
  const TimeSeries vssm = run([&](std::uint64_t seed) {
    return std::make_unique<VssmSimulator>(zgb.model, Configuration(lat, 3, zgb.vacant),
                                           seed + 100);
  });
  const TimeSeries frm = run([&](std::uint64_t seed) {
    return std::make_unique<FrmSimulator>(zgb.model, Configuration(lat, 3, zgb.vacant),
                                          seed + 200);
  });

  EXPECT_LT(mean_abs_difference(rsm, vssm), 0.03);
  EXPECT_LT(mean_abs_difference(rsm, frm), 0.03);
  EXPECT_LT(mean_abs_difference(vssm, frm), 0.03);
}

// --- Segers criterion 1: exponential waiting times -----------------------

// A single always-enabled unit-rate reaction on a single site: the
// inter-event times must be Exp(k) in every exact method.

template <class Sim>
std::vector<double> waiting_times(Sim& sim, int n) {
  std::vector<double> waits;
  waits.reserve(n);
  double last = sim.time();
  for (int i = 0; i < n; ++i) {
    const std::uint64_t before = sim.counters().executed;
    while (sim.counters().executed == before) sim.mc_step();
    waits.push_back(sim.time() - last);
    last = sim.time();
  }
  return waits;
}

ReactionModel noop_model(double k) {
  ReactionModel m(SpeciesSet({"A"}));
  m.add(ReactionType("tick", k, {exact({0, 0}, 0, 0)}));
  return m;
}

TEST(SegersCriterion1, RsmWaitingTimesExponential) {
  const double k = 2.0;
  const ReactionModel m = noop_model(k);
  RsmSimulator sim(m, Configuration(Lattice(1, 1), 1, 0), 21);
  const auto r = stats::ks_exponential(waiting_times(sim, 4000), k);
  EXPECT_FALSE(r.reject(0.001)) << "D=" << r.statistic << " p=" << r.p_value;
}

TEST(SegersCriterion1, VssmWaitingTimesExponential) {
  const double k = 2.0;
  const ReactionModel m = noop_model(k);
  VssmSimulator sim(m, Configuration(Lattice(1, 1), 1, 0), 22);
  const auto r = stats::ks_exponential(waiting_times(sim, 4000), k);
  EXPECT_FALSE(r.reject(0.001)) << "D=" << r.statistic;
}

TEST(SegersCriterion1, FrmWaitingTimesExponential) {
  const double k = 2.0;
  const ReactionModel m = noop_model(k);
  FrmSimulator sim(m, Configuration(Lattice(1, 1), 1, 0), 23);
  const auto r = stats::ks_exponential(waiting_times(sim, 4000), k);
  EXPECT_FALSE(r.reject(0.001)) << "D=" << r.statistic;
}

// --- Segers criterion 2: selection in proportion to rates ----------------

ReactionModel competing_model() {
  ReactionModel m(SpeciesSet({"A"}));
  m.add(ReactionType("r1", 1.0, {exact({0, 0}, 0, 0)}));
  m.add(ReactionType("r2", 2.0, {exact({0, 0}, 0, 0)}));
  m.add(ReactionType("r5", 5.0, {exact({0, 0}, 0, 0)}));
  return m;
}

template <class Sim>
void expect_rate_proportions(Sim& sim, std::uint64_t events) {
  while (sim.counters().executed < events) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  const double total = static_cast<double>(per[0] + per[1] + per[2]);
  // Chi-square against expected proportions 1/8, 2/8, 5/8.
  const double expected[3] = {total / 8, total / 4, total * 5 / 8};
  double chi2 = 0;
  for (int i = 0; i < 3; ++i) {
    const double d = static_cast<double>(per[i]) - expected[i];
    chi2 += d * d / expected[i];
  }
  EXPECT_GT(stats::chi_square_p(chi2, 2), 0.001) << "chi2=" << chi2;
}

TEST(SegersCriterion2, Rsm) {
  const ReactionModel m = competing_model();
  RsmSimulator sim(m, Configuration(Lattice(4, 4), 1, 0), 31);
  expect_rate_proportions(sim, 30000);
}

TEST(SegersCriterion2, Vssm) {
  const ReactionModel m = competing_model();
  VssmSimulator sim(m, Configuration(Lattice(4, 4), 1, 0), 32);
  expect_rate_proportions(sim, 30000);
}

TEST(SegersCriterion2, Frm) {
  const ReactionModel m = competing_model();
  FrmSimulator sim(m, Configuration(Lattice(4, 4), 1, 0), 33);
  expect_rate_proportions(sim, 30000);
}

}  // namespace
}  // namespace casurf
