#include "parallel/domain_decomp.hpp"

#include <gtest/gtest.h>

#include "core/observer.hpp"
#include "dmc/rsm.hpp"
#include "models/zgb.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/coverage.hpp"
#include "stats/timeseries.hpp"

namespace casurf {
namespace {

TEST(DomainDecomp, ValidatesParameters) {
  auto zgb = models::make_zgb();
  const Configuration cfg(Lattice(20, 20), 3, zgb.vacant);
  DomainDecompParams params;
  params.ranks = 0;
  EXPECT_THROW((void)run_domain_decomp(zgb.model, cfg, params), std::invalid_argument);
  params.ranks = 3;  // 20 % 3 != 0
  EXPECT_THROW((void)run_domain_decomp(zgb.model, cfg, params), std::invalid_argument);
  params.ranks = 5;  // strips of width 4 <= 4r with r = 1
  EXPECT_THROW((void)run_domain_decomp(zgb.model, cfg, params), std::invalid_argument);
}

TEST(DomainDecomp, SingleRankMatchesRsmKinetics) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(24, 24);
  const Configuration initial(lat, 3, zgb.vacant);

  DomainDecompParams params;
  params.ranks = 1;
  params.seed = 3;
  params.t_end = 8.0;
  params.sample_dt = 0.5;
  const auto dd = run_domain_decomp(zgb.model, initial, params);

  RsmSimulator rsm(zgb.model, initial, 17);
  CoverageRecorder rec({zgb.o});
  run_sampled(rsm, 8.0, 0.5, rec);

  const TimeSeries dd_o(dd.times, dd.coverage[zgb.o]);
  EXPECT_LT(mean_abs_difference(dd_o, rec.series(zgb.o)), 0.06);
  EXPECT_EQ(dd.comm.messages, 0u);  // one rank: no point-to-point traffic
}

TEST(DomainDecomp, TwoAndFourRanksMatchRsmKinetics) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(24, 24);
  const Configuration initial(lat, 3, zgb.vacant);

  RsmSimulator rsm(zgb.model, initial, 21);
  CoverageRecorder rec({zgb.o});
  run_sampled(rsm, 8.0, 0.5, rec);

  for (const int ranks : {2, 4}) {
    DomainDecompParams params;
    params.ranks = ranks;
    params.seed = 11 + ranks;
    params.t_end = 8.0;
    params.sample_dt = 0.5;
    const auto dd = run_domain_decomp(zgb.model, initial, params);
    const TimeSeries dd_o(dd.times, dd.coverage[zgb.o]);
    EXPECT_LT(mean_abs_difference(dd_o, rec.series(zgb.o)), 0.06) << ranks << " ranks";
  }
}

TEST(DomainDecomp, MessageCountMatchesProtocol) {
  // Every round, each rank sends exactly two messages (halo push + seam
  // return) when p > 1.
  auto zgb = models::make_zgb();
  const Lattice lat(20, 10);
  DomainDecompParams params;
  params.ranks = 2;
  params.t_end = 1.0;
  params.sample_dt = 10.0;  // effectively one sample
  const auto dd = run_domain_decomp(zgb.model, Configuration(lat, 3, zgb.vacant), params);
  EXPECT_EQ(dd.comm.messages, 2u * 2u * dd.rounds);
  // Each message carries 2 r H = 2 * 1 * 10 species bytes.
  EXPECT_EQ(dd.comm.bytes, dd.comm.messages * 20u);
}

TEST(DomainDecomp, TrialBudgetIsOneMcStepPerRound) {
  auto zgb = models::make_zgb();
  const Lattice lat(20, 10);
  DomainDecompParams params;
  params.ranks = 2;
  params.t_end = 2.0;
  const auto dd = run_domain_decomp(zgb.model, Configuration(lat, 3, zgb.vacant), params);
  EXPECT_EQ(dd.total_trials, dd.rounds * lat.size());
}

TEST(DomainDecomp, CoverageRowsSumToOne) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.5, 10.0));
  const Lattice lat(24, 12);
  DomainDecompParams params;
  params.ranks = 4;
  params.t_end = 4.0;
  params.sample_dt = 1.0;
  const auto dd = run_domain_decomp(zgb.model, Configuration(lat, 3, zgb.vacant), params);
  ASSERT_FALSE(dd.times.empty());
  for (std::size_t i = 0; i < dd.times.size(); ++i) {
    double sum = 0;
    for (const auto& row : dd.coverage) sum += row[i];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DomainDecomp, DeterministicForFixedSeed) {
  auto zgb = models::make_zgb();
  const Lattice lat(20, 10);
  DomainDecompParams params;
  params.ranks = 2;
  params.seed = 5;
  params.t_end = 2.0;
  const auto a = run_domain_decomp(zgb.model, Configuration(lat, 3, zgb.vacant), params);
  const auto b = run_domain_decomp(zgb.model, Configuration(lat, 3, zgb.vacant), params);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.times, b.times);
}

TEST(DomainDecomp, ObservabilityDoesNotPerturbTrajectory) {
  // The null-probe-off contract extended to the comm layer: a run with
  // metrics and tracing armed must produce exactly the same trajectory as
  // a bare run — probes read clocks and bump counters, never RNG or
  // lattice state.
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(24, 12);
  const Configuration initial(lat, 3, zgb.vacant);

  DomainDecompParams bare;
  bare.ranks = 4;
  bare.seed = 9;
  bare.t_end = 3.0;
  bare.sample_dt = 0.5;
  const auto a = run_domain_decomp(zgb.model, initial, bare);

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  DomainDecompParams instrumented = bare;
  instrumented.metrics = &registry;
  instrumented.tracer = &tracer;
  const auto b = run_domain_decomp(zgb.model, initial, instrumented);

  EXPECT_EQ(a.times, b.times);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.total_trials, b.total_trials);
  EXPECT_EQ(a.comm.messages, b.comm.messages);
  EXPECT_EQ(a.comm.bytes, b.comm.bytes);

#ifndef CASURF_NO_METRICS
  // The instrumented run did observe: per-rank lanes carry compute spans
  // and the registry carries edge traffic.
  EXPECT_GT(tracer.total_recorded(), 0u);
  std::uint64_t edge_messages = 0;
  for (const auto& c : registry.counters()) {
    if (c.name.starts_with("comm/edge/") && c.name.ends_with("/messages")) {
      edge_messages += c.value;
    }
  }
  EXPECT_EQ(edge_messages, b.comm.messages);
#else
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_TRUE(registry.counters().empty());
#endif
}

}  // namespace
}  // namespace casurf
