// Drift monitor: Welford units, windowed accumulation, profile JSON
// round-trip, alarm logic against doctored references, and the paper-level
// acceptance check — a coarse-partition L-PNDCA run (large L) drifts away
// from a VSSM reference and must alarm, while a fine run (L = 1) stays
// quiet.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>

#include "ca/lpndca.hpp"
#include "core/observer.hpp"
#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"
#include "models/zgb.hpp"
#include "obs/drift.hpp"
#include "partition/partition.hpp"

namespace casurf::obs {
namespace {

TEST(Welford, MatchesClosedFormMoments) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  w.add(2.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);  // n < 2
  w.add(4.0);
  w.add(6.0);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);  // sample variance of {2,4,6}
  w.reset();
  EXPECT_EQ(w.count(), 0u);
}

TEST(Welford, StableUnderLargeOffset) {
  // The classic catastrophic-cancellation case the streaming form avoids.
  Welford w;
  const double base = 1e9;
  for (const double x : {base + 4, base + 7, base + 13, base + 16}) w.add(x);
  EXPECT_NEAR(w.mean(), base + 10, 1e-6);
  EXPECT_NEAR(w.variance(), 30.0, 1e-6);
}

TEST(DriftSampler, RejectsNonPositiveWindow) {
  EXPECT_THROW(DriftRecorder(0.0), std::invalid_argument);
  EXPECT_THROW(DriftRecorder(-1.0), std::invalid_argument);
}

TEST(DriftRecorder, WindowsAlignToAbsoluteSimTimeGrid) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  RsmSimulator sim(zgb.model, Configuration(Lattice(16, 16), 3, zgb.vacant), 11);

  DriftRecorder rec(1.0);
  run_sampled(sim, 5.0, 0.25, rec);
  DriftProfile profile = rec.take_profile(sim.name(), "zgb");

  EXPECT_EQ(profile.algorithm, sim.name());
  EXPECT_EQ(profile.model, "zgb");
  EXPECT_DOUBLE_EQ(profile.window, 1.0);
  ASSERT_EQ(profile.species.size(), zgb.model.species().size());
  ASSERT_GE(profile.windows.size(), 4u);
  for (const DriftWindow& w : profile.windows) {
    EXPECT_DOUBLE_EQ(w.t0, static_cast<double>(w.index) * 1.0);
    EXPECT_DOUBLE_EQ(w.t1, w.t0 + 1.0);
    EXPECT_GT(w.samples, 0u);
    ASSERT_EQ(w.coverage_mean.size(), profile.species.size());
    double total = 0;
    for (const double c : w.coverage_mean) total += c;
    EXPECT_NEAR(total, 1.0, 1e-9);  // coverages partition the lattice
  }
  // find_window is index-keyed, not position-keyed.
  ASSERT_NE(profile.find_window(2), nullptr);
  EXPECT_EQ(profile.find_window(2)->index, 2u);
  EXPECT_EQ(profile.find_window(9999), nullptr);
}

TEST(DriftProfile, JsonRoundTripPreservesEverything) {
  DriftProfile p;
  p.algorithm = "VSSM \"exact\"";  // hostile name through the shared escaper
  p.model = "zgb";
  p.window = 0.5;
  p.species = {"*", "O", "CO\t"};
  DriftWindow w;
  w.index = 3;
  w.t0 = 1.5;
  w.t1 = 2.0;
  w.samples = 7;
  w.coverage_mean = {0.25, 0.5, 0.25};
  w.coverage_var = {0.01, 0.02, 0.005};
  w.rate_mean = 1.25e-3;
  w.rate_var = 4e-8;
  w.rate_samples = 6;
  p.windows.push_back(w);

  const DriftProfile q = DriftProfile::from_json(p.to_json());
  EXPECT_EQ(q.algorithm, p.algorithm);
  EXPECT_EQ(q.model, p.model);
  EXPECT_DOUBLE_EQ(q.window, p.window);
  EXPECT_EQ(q.species, p.species);
  ASSERT_EQ(q.windows.size(), 1u);
  EXPECT_EQ(q.windows[0].index, 3u);
  EXPECT_DOUBLE_EQ(q.windows[0].t0, 1.5);
  EXPECT_EQ(q.windows[0].samples, 7u);
  EXPECT_DOUBLE_EQ(q.windows[0].coverage_mean[1], 0.5);
  EXPECT_DOUBLE_EQ(q.windows[0].coverage_var[2], 0.005);
  EXPECT_DOUBLE_EQ(q.windows[0].rate_mean, 1.25e-3);
  EXPECT_EQ(q.windows[0].rate_samples, 6u);
}

TEST(DriftProfile, CorrelationFieldsRoundTripAndStayOptional) {
  DriftProfile p;
  p.algorithm = "VSSM";
  p.model = "zgb";
  p.window = 1.0;
  p.species = {"*", "CO"};
  p.corr_pairs = {{"*", "*"}, {"*", "CO"}, {"CO", "CO"}};
  p.corr_max_r = 6;
  DriftWindow w;
  w.index = 1;
  w.t0 = 1.0;
  w.t1 = 2.0;
  w.samples = 5;
  w.coverage_mean = {0.6, 0.4};
  w.coverage_var = {0.01, 0.01};
  w.corr_mean = {1.1, 0.8, 2.5};
  w.corr_var = {0.02, 0.01, 0.3};
  w.decay_mean = {0.7, 1.9};
  w.decay_var = {0.05, 0.4};
  p.windows.push_back(w);

  const DriftProfile q = DriftProfile::from_json(p.to_json());
  EXPECT_EQ(q.corr_pairs, p.corr_pairs);
  EXPECT_EQ(q.corr_max_r, 6);
  ASSERT_EQ(q.windows.size(), 1u);
  EXPECT_EQ(q.windows[0].corr_mean, w.corr_mean);
  EXPECT_EQ(q.windows[0].corr_var, w.corr_var);
  EXPECT_EQ(q.windows[0].decay_mean, w.decay_mean);
  EXPECT_EQ(q.windows[0].decay_var, w.decay_var);

  // A scalar-only profile must keep loading: no corr keys in, none out.
  DriftProfile scalar = p;
  scalar.corr_pairs.clear();
  scalar.corr_max_r = 0;
  scalar.windows[0].corr_mean.clear();
  scalar.windows[0].corr_var.clear();
  scalar.windows[0].decay_mean.clear();
  scalar.windows[0].decay_var.clear();
  const std::string json = scalar.to_json();
  EXPECT_EQ(json.find("corr_pairs"), std::string::npos);
  const DriftProfile r = DriftProfile::from_json(json);
  EXPECT_TRUE(r.corr_pairs.empty());
  EXPECT_TRUE(r.windows[0].corr_mean.empty());
}

TEST(DriftProfile, RejectsCorrelationArityMismatch) {
  DriftProfile p;
  p.algorithm = "VSSM";
  p.window = 1.0;
  p.species = {"a", "b"};
  p.corr_pairs = {{"a", "a"}, {"a", "b"}, {"b", "b"}};
  p.corr_max_r = 4;
  DriftWindow w;
  w.coverage_mean = {0.5, 0.5};
  w.coverage_var = {0.1, 0.1};
  w.corr_mean = {1.0};  // wrong arity vs corr_pairs
  w.corr_var = {0.1};
  p.windows.push_back(w);
  EXPECT_THROW((void)DriftProfile::from_json(p.to_json()), std::runtime_error);
}

TEST(DriftSampler, CorrelationTrackingRequiresPositiveRadius) {
  EXPECT_THROW(DriftRecorder(1.0, CorrelationOptions{true, 0}),
               std::invalid_argument);
  EXPECT_NO_THROW(DriftRecorder(1.0, CorrelationOptions{false, 0}));
}

TEST(DriftRecorder, CorrelationProfileCarriesAllPairsAndDecays) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  RsmSimulator sim(zgb.model, Configuration(Lattice(16, 16), 3, zgb.vacant), 11);
  DriftRecorder rec(1.0, CorrelationOptions{true, 4});
  run_sampled(sim, 3.0, 0.25, rec);
  const DriftProfile profile = rec.take_profile(sim.name(), "zgb");
  const std::size_t ns = zgb.model.species().size();
  ASSERT_EQ(profile.corr_pairs.size(), ns * (ns + 1) / 2);
  EXPECT_EQ(profile.corr_max_r, 4);
  // pair_index order: (0,0), (0,1), (0,2), (1,1), ...
  EXPECT_EQ(profile.corr_pairs[0].first, profile.species[0]);
  EXPECT_EQ(profile.corr_pairs[1].second, profile.species[1]);
  for (const DriftWindow& w : profile.windows) {
    EXPECT_EQ(w.corr_mean.size(), profile.corr_pairs.size());
    EXPECT_EQ(w.corr_var.size(), profile.corr_pairs.size());
    EXPECT_EQ(w.decay_mean.size(), ns);
    EXPECT_EQ(w.decay_var.size(), ns);
  }
  // A monitor built from this reference auto-enables correlation tracking.
  DriftMonitor mon(profile);
  EXPECT_TRUE(mon.correlations().enabled);
  EXPECT_EQ(mon.correlations().max_r, 4);
}

TEST(DriftProfile, RejectsWrongSchemaAndMalformedShapes) {
  EXPECT_THROW((void)DriftProfile::from_json("{}"), std::runtime_error);
  EXPECT_THROW((void)DriftProfile::from_json(R"({"schema":"other/1"})"),
               std::runtime_error);
  DriftProfile p;
  p.window = 1.0;
  p.species = {"a", "b"};
  DriftWindow w;
  w.coverage_mean = {0.5};  // wrong arity vs species
  w.coverage_var = {0.5};
  p.windows.push_back(w);
  EXPECT_THROW((void)DriftProfile::from_json(p.to_json()), std::runtime_error);
}

/// Record a ZGB reference profile with the given simulator.
template <typename Sim>
DriftProfile record_profile(Sim& sim, double t_end, double dt, double window) {
  DriftRecorder rec(window);
  run_sampled(sim, t_end, dt, rec);
  return rec.take_profile(sim.name(), "zgb");
}

TEST(DriftMonitor, EquivalentRunStaysQuietDoctoredReferenceAlarms) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(48, 48);

  RsmSimulator ref_sim(zgb.model, Configuration(lat, 3, zgb.vacant), 21);
  const DriftProfile profile = record_profile(ref_sim, 8.0, 0.2, 1.0);

  // Same algorithm, different seed: statistically the same process, so the
  // default gates (material AND significant) must not fire.
  {
    DriftMonitor mon(profile);
    RsmSimulator run(zgb.model, Configuration(lat, 3, zgb.vacant), 22);
    run_sampled(run, 8.0, 0.2, mon);
    mon.finish();
    EXPECT_GE(mon.windows_checked(), 6u);
    EXPECT_TRUE(mon.alarms().empty())
        << "first alarm: " << mon.alarms()[0].what << " z=" << mon.alarms()[0].z;
  }

  // Doctor the reference: shift every coverage mean far outside tolerance
  // with near-zero variance. Every checked window must now alarm.
  DriftProfile doctored = profile;
  for (DriftWindow& w : doctored.windows) {
    for (std::size_t s = 0; s < w.coverage_mean.size(); ++s) {
      w.coverage_mean[s] = w.coverage_mean[s] < 0.5 ? w.coverage_mean[s] + 0.4
                                                    : w.coverage_mean[s] - 0.4;
      w.coverage_var[s] = 1e-8;
    }
  }
  DriftMonitor mon(doctored);
  RsmSimulator run(zgb.model, Configuration(lat, 3, zgb.vacant), 23);
  run_sampled(run, 8.0, 0.2, mon);
  mon.finish();
  EXPECT_FALSE(mon.alarms().empty());
  EXPECT_GT(mon.max_z(), mon.config().z_threshold);
  // Alarm metadata names the drifted statistic.
  EXPECT_EQ(mon.alarms()[0].what.rfind("coverage:", 0), 0u);
}

TEST(DriftMonitor, UnmatchedWindowsAreCountedNotChecked) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(16, 16);
  RsmSimulator ref_sim(zgb.model, Configuration(lat, 3, zgb.vacant), 5);
  DriftProfile profile = record_profile(ref_sim, 2.0, 0.1, 1.0);

  // Monitor a run that outlives the reference: the extra windows must be
  // reported as unmatched, never silently compared against nothing.
  DriftMonitor mon(profile);
  RsmSimulator run(zgb.model, Configuration(lat, 3, zgb.vacant), 6);
  run_sampled(run, 6.0, 0.1, mon);
  mon.finish();
  EXPECT_GT(mon.windows_unmatched(), 0u);
  EXPECT_GT(mon.windows_checked(), 0u);
}

// The acceptance check behind the whole subsystem: the paper's
// accuracy-vs-parallelism trade made visible. A VSSM (exact DMC) reference
// on ZGB; a fine-grained L-PNDCA run (L = 1) is statistically faithful and
// stays quiet, while a coarse run (L = N on a 16-chunk partition — a whole
// lattice worth of trials hammered into one chunk per batch, ~16x
// oversampling while the rest stays frozen) skews the kinetics and must
// alarm. The 80x80 lattice keeps finite-size trajectory noise (~1/sqrt(N))
// well under the coarse bias: measured fine max|Δcoverage| ≤ 0.024 across
// seeds vs ≥ 0.054 coarse, so abs_tol 0.03 separates with margin on both
// sides.
TEST(DriftMonitor, CoarsePartitionAlarmsFinePartitionQuiet) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(80, 80);
  const Configuration initial(lat, 3, zgb.vacant);
  const Partition part = Partition::linear_form(lat, 1, 3, 16);

  VssmSimulator ref_sim(zgb.model, initial, 31);
  const DriftProfile profile = record_profile(ref_sim, 10.0, 0.2, 1.0);

  DriftConfig config;
  config.coverage_abs_tol = 0.03;
  const auto monitor_l = [&](std::uint32_t l_param, std::uint64_t seed) {
    DriftMonitor mon(profile, config);
    LPndcaSimulator sim(zgb.model, initial, part, seed, l_param);
    run_sampled(sim, 10.0, 0.2, mon);
    mon.finish();
    return mon;
  };

  const DriftMonitor fine = monitor_l(1, 32);
  EXPECT_GE(fine.windows_checked(), 8u);
  EXPECT_TRUE(fine.alarms().empty())
      << "fine run alarmed: " << fine.alarms()[0].what << " window "
      << fine.alarms()[0].window << " z=" << fine.alarms()[0].z;

  const DriftMonitor coarse =
      monitor_l(static_cast<std::uint32_t>(lat.size()), 33);
  EXPECT_FALSE(coarse.alarms().empty())
      << "coarse run (L=N) failed to alarm; max z=" << coarse.max_z();
}

// The spatial extension's reason to exist: a coarseness the SCALAR monitor
// passes. At L = 2048 on the 16-chunk partition the per-species coverages
// and the event rate track the VSSM reference within the default gates —
// every scalar check is quiet — but hammering 2048 trials into one chunk
// per batch breaks up CO clusters faster than exact kinetics would, and the
// windowed pair-correlation profile catches it: observed g_CO,CO ~ 3.2-3.7
// against a reference of 3.3-4.6 late in the run (measured across seeds
// 32-37: five of six raise corr:CO,CO with zero scalar alarms; seed 36,
// pinned here, raises two with z = 6.7). The corr checks share the monitor
// with the scalar ones, so "no coverage/rate alarms" below is exactly what
// a scalar-only monitor would have reported: a clean bill.
TEST(DriftMonitor, CorrelationDriftCatchesWhatScalarMonitorMisses) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(80, 80);
  const Configuration initial(lat, 3, zgb.vacant);
  const Partition part = Partition::linear_form(lat, 1, 3, 16);

  VssmSimulator ref_sim(zgb.model, initial, 31);
  DriftRecorder rec(1.0, CorrelationOptions{true, 8});
  run_sampled(ref_sim, 10.0, 0.2, rec);
  const DriftProfile profile = rec.take_profile(ref_sim.name(), "zgb");

  const auto monitor_l = [&](std::uint32_t l_param, std::uint64_t seed) {
    DriftMonitor mon(profile);  // default config; corr auto-enabled by ref
    LPndcaSimulator sim(zgb.model, initial, part, seed, l_param);
    run_sampled(sim, 10.0, 0.2, mon);
    mon.finish();
    return mon;
  };

  // Exact limit (L = 1): statistically faithful, nothing fires at all.
  const DriftMonitor fine = monitor_l(1, 32);
  EXPECT_GE(fine.windows_checked(), 8u);
  EXPECT_TRUE(fine.alarms().empty())
      << "fine run alarmed: " << fine.alarms()[0].what
      << " z=" << fine.alarms()[0].z;

  const DriftMonitor coarse = monitor_l(2048, 36);
  std::size_t corr_alarms = 0, scalar_alarms = 0;
  for (const DriftAlarm& a : coarse.alarms()) {
    if (a.what.rfind("corr:", 0) == 0 || a.what.rfind("decay:", 0) == 0) {
      ++corr_alarms;
    } else {
      ++scalar_alarms;
    }
  }
  EXPECT_GT(corr_alarms, 0u)
      << "coarse run raised no correlation alarm; max z=" << coarse.max_z();
  EXPECT_EQ(scalar_alarms, 0u)
      << "scalar gate fired too - this coarseness no longer isolates the "
         "spatial signal: "
      << coarse.alarms()[0].what;
}

}  // namespace
}  // namespace casurf::obs
