#include "dmc/enabled_set.hpp"

#include <gtest/gtest.h>

#include <set>

#include "rng/xoshiro.hpp"
#include "rng/distributions.hpp"

namespace casurf {
namespace {

TEST(EnabledSet, StartsEmpty) {
  const EnabledSet set(16);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(3));
}

TEST(EnabledSet, InsertContains) {
  EnabledSet set(16);
  set.insert(5);
  set.insert(7);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(5));
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(6));
}

TEST(EnabledSet, InsertIdempotent) {
  EnabledSet set(16);
  set.insert(5);
  set.insert(5);
  EXPECT_EQ(set.size(), 1u);
}

TEST(EnabledSet, EraseSwapsWithLast) {
  EnabledSet set(16);
  set.insert(1);
  set.insert(2);
  set.insert(3);
  set.erase(2);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.contains(2));
  EXPECT_TRUE(set.contains(1));
  EXPECT_TRUE(set.contains(3));
  // Dense positions remain valid.
  std::set<SiteIndex> seen;
  for (std::size_t i = 0; i < set.size(); ++i) seen.insert(set.at(i));
  EXPECT_EQ(seen, (std::set<SiteIndex>{1, 3}));
}

TEST(EnabledSet, EraseIdempotent) {
  EnabledSet set(16);
  set.insert(1);
  set.erase(1);
  set.erase(1);
  EXPECT_TRUE(set.empty());
}

TEST(EnabledSet, EraseLastElement) {
  EnabledSet set(8);
  set.insert(4);
  set.erase(4);
  EXPECT_FALSE(set.contains(4));
  set.insert(4);
  EXPECT_TRUE(set.contains(4));
}

TEST(EnabledSet, RandomisedInvariantCheck) {
  // Mirror against std::set under a random op sequence.
  EnabledSet set(64);
  std::set<SiteIndex> mirror;
  Xoshiro256 rng(77);
  for (int i = 0; i < 5000; ++i) {
    const auto site = static_cast<SiteIndex>(uniform_below(rng, 64));
    if (uniform01(rng) < 0.5) {
      set.insert(site);
      mirror.insert(site);
    } else {
      set.erase(site);
      mirror.erase(site);
    }
    ASSERT_EQ(set.size(), mirror.size());
    ASSERT_EQ(set.contains(site), mirror.count(site) == 1);
  }
  std::set<SiteIndex> dense(set.items().begin(), set.items().end());
  EXPECT_EQ(dense, mirror);
}

TEST(EnabledSet, UniformSamplingOverItems) {
  EnabledSet set(10);
  for (SiteIndex s = 0; s < 5; ++s) set.insert(s);
  Xoshiro256 rng(9);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[set.at(uniform_below(rng, set.size()))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 0.2, 0.01);
  }
}

}  // namespace
}  // namespace casurf
