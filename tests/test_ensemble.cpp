#include "stats/ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dmc/rsm.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

std::function<std::unique_ptr<Simulator>(std::uint64_t)> factory(
    const ReactionModel& m) {
  return [&m](std::uint64_t seed) {
    return std::make_unique<RsmSimulator>(m, Configuration(Lattice(8, 8), 2, 0), seed);
  };
}

double coverage_a(const Simulator& sim) { return sim.configuration().coverage(1); }

TEST(Ensemble, GridShapeAndInitialPoint) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const auto result = run_ensemble(factory(m), coverage_a, 8, 2.0, 0.5, 2);
  EXPECT_EQ(result.runs, 8u);
  ASSERT_EQ(result.mean.size(), 5u);  // t = 0, .5, 1, 1.5, 2
  EXPECT_DOUBLE_EQ(result.mean.time(0), 0.0);
  EXPECT_DOUBLE_EQ(result.mean.value(0), 0.0);  // all replicas start empty
  EXPECT_DOUBLE_EQ(result.stddev.value(0), 0.0);
}

TEST(Ensemble, MeanApproachesLangmuirWithSmallStderr) {
  const double ka = 1.0, kd = 1.0;
  const ReactionModel m = ads_des_model(ka, kd);
  const auto result = run_ensemble(factory(m), coverage_a, 64, 8.0, 8.0, 3);
  const double final_mean = result.mean.values().back();
  EXPECT_NEAR(final_mean, ka / (ka + kd), 0.02);
  EXPECT_GT(result.stddev.values().back(), 0.0);
  EXPECT_LT(result.stderr_at(result.mean.size() - 1), 0.01);
}

TEST(Ensemble, ResultIndependentOfThreadCount) {
  // Replicas are seeded by index, so the reduction is identical no matter
  // how they were scheduled.
  const ReactionModel m = ads_des_model(1.0, 0.5);
  const auto one = run_ensemble(factory(m), coverage_a, 12, 3.0, 1.0, 1, 42);
  const auto four = run_ensemble(factory(m), coverage_a, 12, 3.0, 1.0, 4, 42);
  ASSERT_EQ(one.mean.size(), four.mean.size());
  for (std::size_t i = 0; i < one.mean.size(); ++i) {
    EXPECT_DOUBLE_EQ(one.mean.value(i), four.mean.value(i));
    EXPECT_DOUBLE_EQ(one.stddev.value(i), four.stddev.value(i));
  }
}

TEST(Ensemble, StderrShrinksWithMoreReplicas) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const auto small = run_ensemble(factory(m), coverage_a, 16, 4.0, 4.0, 2, 7);
  const auto large = run_ensemble(factory(m), coverage_a, 128, 4.0, 4.0, 2, 7);
  const std::size_t last_s = small.mean.size() - 1;
  const std::size_t last_l = large.mean.size() - 1;
  EXPECT_LT(large.stderr_at(last_l), small.stderr_at(last_s));
}

TEST(Ensemble, ValidatesArguments) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  EXPECT_THROW((void)run_ensemble(nullptr, coverage_a, 4, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)run_ensemble(factory(m), nullptr, 4, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)run_ensemble(factory(m), coverage_a, 0, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)run_ensemble(factory(m), coverage_a, 4, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Ensemble, SingleReplicaHasZeroSpread) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const auto result = run_ensemble(factory(m), coverage_a, 1, 1.0, 0.5, 2);
  for (std::size_t i = 0; i < result.stddev.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.stddev.value(i), 0.0);
  }
  EXPECT_DOUBLE_EQ(result.stderr_at(0), 0.0);
}

}  // namespace
}  // namespace casurf
