// The fault-injection framework (docs/ROBUSTNESS.md): spec grammar, the
// hit@N / prob@P triggers and their deterministic replay, the disarmed
// null-probe contract, and the wired sites — atomic writes, checkpoint
// content damage, thread-pool worker failures, and the fast-path partition
// gate. Trigger tests skip under CASURF_FAILPOINTS=OFF, where the only
// contract is that every nonempty spec is refused.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ca/fastpath.hpp"
#include "core/simulation.hpp"
#include "io/atomic_file.hpp"
#include "io/checkpoint.hpp"
#include "models/zgb.hpp"
#include "parallel/thread_pool.hpp"
#include "util/failpoint.hpp"

namespace casurf {
namespace {

/// Every test leaves the process-global registry disarmed: a leaked armed
/// failpoint would inject faults into unrelated tests in the same binary.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::reset(); }

  static std::string temp_path(const char* stem) {
    return ::testing::TempDir() + "casurf_failpoint_test." +
           std::to_string(::getpid()) + "." + stem;
  }
};

// --- Spec grammar ---------------------------------------------------------

TEST_F(FailpointTest, ValidatesWellFormedSpecs) {
  EXPECT_EQ(fail::validate(""), "");
  if (!fail::kFailpointsCompiled) return;
  EXPECT_EQ(fail::validate("io/checkpoint/corrupt=hit@2"), "");
  EXPECT_EQ(fail::validate("a=hit@1,b=prob@0.25,c=prob@0"), "");
  EXPECT_EQ(fail::validate("x=prob@1"), "");
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  EXPECT_NE(fail::validate("noequals"), "");
  EXPECT_NE(fail::validate("=hit@1"), "");
  EXPECT_NE(fail::validate("a=hit@0"), "");     // 1-based: 0 never fires
  EXPECT_NE(fail::validate("a=hit@-1"), "");
  EXPECT_NE(fail::validate("a=hit@2x"), "");
  EXPECT_NE(fail::validate("a=prob@1.5"), "");
  EXPECT_NE(fail::validate("a=prob@-0.1"), "");
  EXPECT_NE(fail::validate("a=wrong@3"), "");
  EXPECT_NE(fail::validate("a=hit@1,,b=hit@2"), "");  // stray comma
  EXPECT_NE(fail::validate("a=hit@1,"), "");
}

TEST_F(FailpointTest, CompiledOutBuildRefusesEveryNonEmptySpec) {
  if (fail::kFailpointsCompiled) GTEST_SKIP() << "failpoints compiled in";
  EXPECT_NE(fail::validate("a=hit@1"), "");
  EXPECT_NE(fail::configure("a=hit@1"), "");
  EXPECT_TRUE(fail::armed_names().empty());
}

// --- Triggers -------------------------------------------------------------

TEST_F(FailpointTest, DisarmedSiteNeverFiresAndCountsNothing) {
  constexpr fail::Failpoint fp{"test/disarmed"};
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fp.fire());
  EXPECT_EQ(fail::evaluations("test/disarmed"), 0u);
}

TEST_F(FailpointTest, HitFiresExactlyOnTheNthEvaluation) {
  if (!fail::kFailpointsCompiled) GTEST_SKIP() << "CASURF_FAILPOINTS=OFF";
  ASSERT_EQ(fail::configure("test/hit=hit@3"), "");
  constexpr fail::Failpoint fp{"test/hit"};
  EXPECT_FALSE(fp.fire());
  EXPECT_FALSE(fp.fire());
  EXPECT_TRUE(fp.fire());
  EXPECT_FALSE(fp.fire());  // once, not "from the Nth on"
  EXPECT_FALSE(fp.fire());
  EXPECT_EQ(fail::evaluations("test/hit"), 5u);
  EXPECT_EQ(fail::fires("test/hit"), 1u);
}

TEST_F(FailpointTest, ArmedNamesFollowTheSpec) {
  if (!fail::kFailpointsCompiled) GTEST_SKIP() << "CASURF_FAILPOINTS=OFF";
  ASSERT_EQ(fail::configure("b=hit@1,a=prob@0.5"), "");
  const std::vector<std::string> names = fail::armed_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(names[1], "a");
  ASSERT_EQ(fail::configure(""), "");  // empty spec disarms
  EXPECT_TRUE(fail::armed_names().empty());
}

TEST_F(FailpointTest, ProbReplaysExactlyForAFixedSeed) {
  if (!fail::kFailpointsCompiled) GTEST_SKIP() << "CASURF_FAILPOINTS=OFF";
  const auto pattern = [](std::uint64_t seed) {
    fail::reset();
    fail::set_seed(seed);
    EXPECT_EQ(fail::configure("test/prob=prob@0.3"), "");
    constexpr fail::Failpoint fp{"test/prob"};
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(fp.fire());
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  const std::vector<bool> b = pattern(42);
  EXPECT_EQ(a, b) << "same (seed, spec) must replay the same firing pattern";
  const std::vector<bool> c = pattern(43);
  EXPECT_NE(a, c) << "a different seed should draw a different pattern";
  // Sanity on the rate: ~0.3 * 200 = 60 expected fires, generous bounds.
  const auto fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 30);
  EXPECT_LT(fires, 100);
}

TEST_F(FailpointTest, ProbEdgeCasesNeverAndAlways) {
  if (!fail::kFailpointsCompiled) GTEST_SKIP() << "CASURF_FAILPOINTS=OFF";
  ASSERT_EQ(fail::configure("never=prob@0,always=prob@1"), "");
  constexpr fail::Failpoint never{"never"};
  constexpr fail::Failpoint always{"always"};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.fire());
    EXPECT_TRUE(always.fire());
  }
  EXPECT_EQ(fail::fires("never"), 0u);
  EXPECT_EQ(fail::fires("always"), 50u);
}

// --- Wired sites ----------------------------------------------------------

TEST_F(FailpointTest, AtomicWriteShortWriteLeavesTargetUntouched) {
  if (!fail::kFailpointsCompiled) GTEST_SKIP() << "CASURF_FAILPOINTS=OFF";
  const std::string path = temp_path("short_write");
  io::atomic_write_file(path, "old contents");
  ASSERT_EQ(fail::configure("io/atomic_write/short_write=hit@1"), "");
  EXPECT_THROW(io::atomic_write_file(path, "new contents"), std::runtime_error);
  // The failed write must neither damage the target nor leak its temp file.
  EXPECT_EQ(io::read_file(path), "old contents");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp." +
                                       std::to_string(::getpid())));
  std::filesystem::remove(path);
}

TEST_F(FailpointTest, AtomicWriteFsyncAndRenameFailuresNameTheSyscall) {
  if (!fail::kFailpointsCompiled) GTEST_SKIP() << "CASURF_FAILPOINTS=OFF";
  const std::string path = temp_path("fsync");
  ASSERT_EQ(fail::configure("io/atomic_write/fsync=hit@1"), "");
  try {
    io::atomic_write_file(path, "x");
    FAIL() << "expected the injected fsync failure to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fsync"), std::string::npos) << e.what();
  }
  ASSERT_EQ(fail::configure("io/atomic_write/rename=hit@1"), "");
  try {
    io::atomic_write_file(path, "x");
    FAIL() << "expected the injected rename failure to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rename"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(FailpointTest, CheckpointCorruptionIsCaughtAtRestore) {
  if (!fail::kFailpointsCompiled) GTEST_SKIP() << "CASURF_FAILPOINTS=OFF";
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  SimulationOptions opt;
  opt.algorithm = Algorithm::kRsm;
  opt.seed = 9;
  const Configuration init(Lattice(16, 16), 3, zgb.vacant);
  const auto make = [&] { return make_simulator(zgb.model, init, opt); };

  for (const char* spec :
       {"io/checkpoint/corrupt=hit@1", "io/checkpoint/truncate=hit@1"}) {
    SCOPED_TRACE(spec);
    const std::string path = temp_path("ck");
    std::unique_ptr<Simulator> sim = make();
    sim->advance_to(1.0);
    ASSERT_EQ(fail::configure(spec), "");
    io::save_checkpoint(path, *sim);  // the write itself succeeds...
    fail::reset();
    std::unique_ptr<Simulator> fresh = make();
    // ...and only the restore discovers the file is unusable.
    EXPECT_THROW(io::restore_checkpoint(path, *fresh), io::CheckpointError);
    std::filesystem::remove(path);
  }
}

TEST_F(FailpointTest, ThreadPoolWorkerThrowSurfacesAndPoolStaysUsable) {
  if (!fail::kFailpointsCompiled) GTEST_SKIP() << "CASURF_FAILPOINTS=OFF";
  ThreadPool pool(4);
  ASSERT_EQ(fail::configure("thread_pool/worker_throw=hit@1"), "");
  EXPECT_THROW(
      pool.parallel_for(64, [](unsigned, std::size_t, std::size_t) {}),
      std::runtime_error);
  fail::reset();
  // The barrier completed and the exception slot drained: the same pool
  // must run the next job normally.
  std::atomic<std::size_t> visited{0};
  pool.parallel_for(64, [&](unsigned, std::size_t begin, std::size_t end) {
    visited += end - begin;
  });
  EXPECT_EQ(visited.load(), 64u);
}

TEST_F(FailpointTest, PartitionGateFailureForcesScalarFallback) {
  if (!fail::kFailpointsCompiled) GTEST_SKIP() << "CASURF_FAILPOINTS=OFF";
  if (!kFastPathCompiled) GTEST_SKIP() << "CASURF_FASTPATH=OFF";
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Configuration init(Lattice(32, 32), 3, zgb.vacant);
  SimulationOptions opt;
  opt.algorithm = Algorithm::kPndca;
  opt.seed = 5;
  opt.fast_path = true;

  std::unique_ptr<Simulator> fast = make_simulator(zgb.model, init, opt);
  ASSERT_TRUE(fast->fast_path_active());

  ASSERT_EQ(fail::configure("fastpath/partition_gate=hit@1"), "");
  std::unique_ptr<Simulator> gated = make_simulator(zgb.model, init, opt);
  EXPECT_FALSE(gated->fast_path_active())
      << "a failed gate must fall back to the scalar reference path";
  fail::reset();

  // The fallback is the same trajectory, just slower: lockstep for a while.
  for (int i = 0; i < 200; ++i) {
    fast->mc_step();
    gated->mc_step();
    ASSERT_EQ(fast->time(), gated->time()) << "step " << i;
  }
  EXPECT_TRUE(std::equal(fast->configuration().raw().begin(),
                          fast->configuration().raw().end(),
                          gated->configuration().raw().begin()));
}

}  // namespace
}  // namespace casurf
