// The dual-path determinism contract (docs/ALGORITHMS.md): engaging the
// batched bitplane trial path must not change a single bit of any
// trajectory — same configuration, same clock, same counters, step for
// step — across every algorithm, chunk policy, thread count, and model.
// These tests run scalar and fast simulators in lockstep and compare after
// every MC step, so a divergence pinpoints the first step that differs.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "ca/fastpath.hpp"
#include "ca/lpndca.hpp"
#include "ca/pndca.hpp"
#include "ca/tpndca.hpp"
#include "core/audit.hpp"
#include "core/simulation.hpp"
#include "io/checkpoint.hpp"
#include "models/ising.hpp"
#include "models/pt100.hpp"
#include "models/zgb.hpp"
#include "obs/metrics.hpp"
#include "obs/spatial.hpp"
#include "parallel/parallel_pndca.hpp"
#include "partition/coloring.hpp"
#include "partition/type_partition.hpp"

namespace casurf {
namespace {

void expect_lockstep(Simulator& scalar, Simulator& fast, int steps) {
  for (int i = 0; i < steps; ++i) {
    scalar.mc_step();
    fast.mc_step();
    ASSERT_EQ(scalar.time(), fast.time()) << "clock diverged at step " << i;
    ASSERT_EQ(scalar.counters().trials, fast.counters().trials) << "step " << i;
    ASSERT_EQ(scalar.counters().executed, fast.counters().executed)
        << "step " << i;
    const auto a = scalar.configuration().raw();
    const auto b = fast.configuration().raw();
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
        << "configuration diverged at step " << i;
  }
}

struct Sweep {
  Algorithm algorithm;
  unsigned threads;
  const char* tag;
};

class FastVsScalar : public ::testing::TestWithParam<Sweep> {};

TEST_P(FastVsScalar, ZgbLockstep) {
  const Sweep p = GetParam();
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Configuration init(Lattice(48, 48), 3, zgb.vacant);
  SimulationOptions opt;
  opt.algorithm = p.algorithm;
  opt.seed = 97;
  opt.threads = p.threads;
  opt.l_trials = 8;
  auto scalar = make_simulator(zgb.model, init, opt);
  opt.fast_path = true;
  auto fast = make_simulator(zgb.model, init, opt);
  const bool has_fast = p.algorithm == Algorithm::kPndca ||
                        p.algorithm == Algorithm::kLPndca ||
                        p.algorithm == Algorithm::kTPndca ||
                        p.algorithm == Algorithm::kParallelPndca;
  EXPECT_EQ(fast->fast_path_active(), kFastPathCompiled && has_fast) << p.tag;
  EXPECT_FALSE(scalar->fast_path_active());
  expect_lockstep(*scalar, *fast, 30);
}

TEST_P(FastVsScalar, Pt100Lockstep) {
  const Sweep p = GetParam();
  auto pt = models::make_pt100();
  const Configuration init(Lattice(30, 30), pt.model.species().size(), pt.hex_vac);
  SimulationOptions opt;
  opt.algorithm = p.algorithm;
  opt.seed = 5;
  opt.threads = p.threads;
  auto scalar = make_simulator(pt.model, init, opt);
  opt.fast_path = true;
  auto fast = make_simulator(pt.model, init, opt);
  expect_lockstep(*scalar, *fast, 15);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, FastVsScalar,
    ::testing::Values(Sweep{Algorithm::kRsm, 1, "rsm"},
                      Sweep{Algorithm::kVssm, 1, "vssm"},
                      Sweep{Algorithm::kFrm, 1, "frm"},
                      Sweep{Algorithm::kNdca, 1, "ndca"},
                      Sweep{Algorithm::kPndca, 1, "pndca"},
                      Sweep{Algorithm::kLPndca, 1, "lpndca"},
                      Sweep{Algorithm::kTPndca, 1, "tpndca"},
                      Sweep{Algorithm::kParallelPndca, 2, "parallel2"},
                      Sweep{Algorithm::kParallelPndca, 7, "parallel7"}),
    [](const auto& info) { return info.param.tag; });

TEST(FastPath, PndcaAllChunkPolicies) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.5, 10.0));
  const Configuration init(Lattice(40, 40), 3, zgb.vacant);
  for (const ChunkPolicy policy :
       {ChunkPolicy::kInOrder, ChunkPolicy::kRandomOrder,
        ChunkPolicy::kRandomWithReplacement, ChunkPolicy::kRateWeighted}) {
    SimulationOptions opt;
    opt.algorithm = Algorithm::kPndca;
    opt.chunk_policy = policy;
    opt.seed = 31;
    auto scalar = make_simulator(zgb.model, init, opt);
    opt.fast_path = true;
    auto fast = make_simulator(zgb.model, init, opt);
    ASSERT_EQ(fast->fast_path_active(), kFastPathCompiled);
    expect_lockstep(*scalar, *fast, 25);
  }
}

TEST(FastPath, IsingSevenThreadsLockstep) {
  auto ising = models::make_ising(0.7);
  Configuration init(Lattice(40, 40), 2, 0);
  for (SiteIndex s = 0; s < init.size(); s += 3) init.set(s, 1);
  SimulationOptions opt;
  opt.algorithm = Algorithm::kParallelPndca;
  opt.threads = 7;
  opt.seed = 1234;
  auto scalar = make_simulator(ising.model, init, opt);
  opt.fast_path = true;
  auto fast = make_simulator(ising.model, init, opt);
  expect_lockstep(*scalar, *fast, 20);
}

TEST(FastPath, LPndcaRateWeightedLockstep) {
  // The fast batch feeds the same incremental rate cache the scalar loop
  // does; rate-weighted chunk selection must see identical counts.
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  Configuration init(Lattice(36, 36), 3, zgb.vacant);
  const Partition p = make_partition(init.lattice(), zgb.model);
  LPndcaSimulator scalar(zgb.model, init, p, 77, 16, TimeMode::kStochastic,
                         ChunkWeighting::kRateWeighted);
  LPndcaSimulator fast(zgb.model, init, p, 77, 16, TimeMode::kStochastic,
                       ChunkWeighting::kRateWeighted);
  EXPECT_EQ(fast.set_fast_path(true), kFastPathCompiled);
  expect_lockstep(scalar, fast, 25);
}

TEST(FastPath, TPndcaRateWeightedLockstep) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.5, 10.0));
  Configuration init(Lattice(32, 32), 3, zgb.vacant);
  auto subsets = make_type_partition(init.lattice(), zgb.model);
  TPndcaSimulator scalar(zgb.model, init, subsets, 19, 0,
                         ChunkWeighting::kRateWeighted);
  TPndcaSimulator fast(zgb.model, init, subsets, 19, 0,
                       ChunkWeighting::kRateWeighted);
  EXPECT_EQ(fast.set_fast_path(true), kFastPathCompiled);
  expect_lockstep(scalar, fast, 30);
}

TEST(FastPath, FallsBackWhenPartitionViolatesNonOverlap) {
  // A single-chunk "partition" puts conflicting anchors in the same batch;
  // the runtime gate must refuse and keep the scalar reference loop, with
  // an unchanged trajectory.
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Configuration init(Lattice(24, 24), 3, zgb.vacant);
  PndcaSimulator scalar(zgb.model, init,
                        {Partition::single_chunk(init.lattice())}, 7);
  PndcaSimulator fast(zgb.model, init,
                      {Partition::single_chunk(init.lattice())}, 7);
  EXPECT_FALSE(fast.set_fast_path(true));
  EXPECT_FALSE(fast.fast_path_active());
  expect_lockstep(scalar, fast, 10);
}

TEST(FastPath, DisengagingRestoresScalarLoop) {
  auto zgb = models::make_zgb();
  const Configuration init(Lattice(24, 24), 3, zgb.vacant);
  SimulationOptions opt;
  opt.algorithm = Algorithm::kPndca;
  opt.fast_path = true;
  auto sim = make_simulator(zgb.model, init, opt);
  EXPECT_EQ(sim->fast_path_active(), kFastPathCompiled);
  EXPECT_FALSE(sim->set_fast_path(false));
  EXPECT_FALSE(sim->fast_path_active());
  opt.fast_path = false;
  auto scalar = make_simulator(zgb.model, init, opt);
  expect_lockstep(*scalar, *sim, 10);
}

TEST(FastPath, CheckpointRoundTripStaysInLockstep) {
  // Planes are derived state: a restore rebuilds them from the restored
  // configuration, after which the fast run must still track the scalar
  // reference bit for bit.
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Configuration init(Lattice(32, 32), 3, zgb.vacant);
  SimulationOptions opt;
  opt.algorithm = Algorithm::kPndca;
  opt.seed = 44;
  auto scalar = make_simulator(zgb.model, init, opt);
  opt.fast_path = true;
  auto fast = make_simulator(zgb.model, init, opt);
  expect_lockstep(*scalar, *fast, 10);

  StateWriter w;
  fast->save_state(w);
  // Same construction parameters, as the checkpoint contract requires (the
  // CLI rebuilds from identical options before restoring).
  auto resumed = make_simulator(zgb.model, init, opt);
  StateReader r(w.buffer());
  resumed->restore_state(r);
  expect_lockstep(*scalar, *resumed, 15);
}

TEST(FastPath, AuditIsCleanWhileActive) {
  auto pt = models::make_pt100();
  const Configuration init(Lattice(24, 24), pt.model.species().size(),
                           pt.hex_vac);
  SimulationOptions opt;
  opt.algorithm = Algorithm::kPndca;
  opt.fast_path = true;
  auto sim = make_simulator(pt.model, init, opt);
  sim->advance_to(2.0);
  AuditReport report;
  sim->audit_derived_state(report, /*repair=*/false);
  EXPECT_TRUE(report.issues.empty()) << report.to_string();
}

TEST(FastPath, AuditDetectsAndRepairsStalePlanes) {
  auto zgb = models::make_zgb();
  const Configuration init(Lattice(20, 20), 3, zgb.vacant);
  SimulationOptions opt;
  opt.algorithm = Algorithm::kPndca;
  opt.fast_path = true;
  auto sim = make_simulator(zgb.model, init, opt);
  auto* pndca = dynamic_cast<PndcaSimulator*>(sim.get());
  ASSERT_NE(pndca, nullptr);
  if (!pndca->fast_path_active()) GTEST_SKIP() << "built without the fast path";
  sim->advance_to(1.0);
  // Corrupt one plane bit behind the simulator's back, then audit.
  Configuration other = sim->configuration();
  const Species cur = other.get(0);
  other.set(0, static_cast<Species>((cur + 1) % 3));
  pndca->fast_planes_for_test()->resync_site(other, 0);
  AuditReport report;
  sim->audit_derived_state(report, /*repair=*/true);
  EXPECT_FALSE(report.issues.empty());
  AuditReport clean;
  sim->audit_derived_state(clean, /*repair=*/false);
  EXPECT_TRUE(clean.issues.empty()) << clean.to_string();
}

TEST(FastPath, ProbesDoNotPerturbTheFastTrajectory) {
  // Metrics registry + spatial map attached to the FAST run only; the
  // scalar run stays bare. Identical trajectories prove the probes read
  // without perturbing (the same guarantee the scalar path already makes).
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Configuration init(Lattice(32, 32), 3, zgb.vacant);
  SimulationOptions opt;
  opt.algorithm = Algorithm::kLPndca;
  opt.l_trials = 32;
  opt.seed = 13;
  auto scalar = make_simulator(zgb.model, init, opt);
  opt.fast_path = true;
  auto fast = make_simulator(zgb.model, init, opt);
  obs::MetricsRegistry registry;
  fast->set_metrics(&registry);
  obs::SpatialMap map(init.size());
  fast->set_spatial(&map);
  expect_lockstep(*scalar, *fast, 20);
#ifndef CASURF_NO_METRICS
  if (fast->fast_path_active()) {
    std::uint64_t attempts = 0;
    for (SiteIndex s = 0; s < init.size(); ++s) attempts += map.attempts(s);
    EXPECT_EQ(attempts, fast->counters().trials);
  }
#endif
}

}  // namespace
}  // namespace casurf
