#include "dmc/frm.hpp"

#include <gtest/gtest.h>

#include "models/zgb.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

TEST(Frm, InitialEnabledPairsCount) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  FrmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 1);
  // All 16 sites vacant: adsorption enabled everywhere, desorption nowhere.
  EXPECT_EQ(sim.enabled_pairs(), 16u);
}

TEST(Frm, EventTimesAreMonotone) {
  const ReactionModel m = ads_des_model(1.0, 0.5);
  FrmSimulator sim(m, Configuration(Lattice(8, 8), 2, 0), 2);
  double last = 0;
  for (int i = 0; i < 2000; ++i) {
    sim.mc_step();
    ASSERT_GE(sim.time(), last);
    last = sim.time();
  }
}

TEST(Frm, EquilibriumCoverage) {
  const double ka = 2.0, kd = 1.0;
  const ReactionModel m = ads_des_model(ka, kd);
  FrmSimulator sim(m, Configuration(Lattice(32, 32), 2, 0), 3);
  sim.advance_to(20.0);
  double avg = 0;
  const int samples = 200;
  for (int i = 0; i < samples; ++i) {
    for (int k = 0; k < 20; ++k) sim.mc_step();
    avg += sim.configuration().coverage(1);
  }
  avg /= samples;
  EXPECT_NEAR(avg, ka / (ka + kd), 0.02);
}

TEST(Frm, StalledAbsorbingState) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));
  FrmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 4);
  sim.advance_to(500.0);
  EXPECT_TRUE(sim.stalled());
  EXPECT_EQ(sim.counters().executed, 16u);
  EXPECT_GE(sim.time(), 500.0);
  EXPECT_EQ(sim.enabled_pairs(), 0u);
}

TEST(Frm, ExecutionRatioFollowsRates) {
  ReactionModel m(SpeciesSet({"A"}));
  m.add(ReactionType("r2", 2.0, {exact({0, 0}, 0, 0)}));
  m.add(ReactionType("r1", 1.0, {exact({0, 0}, 0, 0)}));
  FrmSimulator sim(m, Configuration(Lattice(5, 5), 1, 0), 5);
  for (int i = 0; i < 60000; ++i) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  const double frac = static_cast<double>(per[0]) /
                      static_cast<double>(per[0] + per[1]);
  EXPECT_NEAR(frac, 2.0 / 3.0, 0.01);
}

TEST(Frm, EnabledPairsConsistentAfterManyEvents) {
  auto zgb = models::make_zgb();
  FrmSimulator sim(zgb.model, Configuration(Lattice(8, 8), 3, zgb.vacant), 6);
  for (int i = 0; i < 2000; ++i) sim.mc_step();
  std::uint64_t brute = 0;
  for (ReactionIndex i = 0; i < zgb.model.num_reactions(); ++i) {
    for (SiteIndex s = 0; s < sim.configuration().size(); ++s) {
      if (zgb.model.reaction(i).enabled(sim.configuration(), s)) ++brute;
    }
  }
  EXPECT_EQ(sim.enabled_pairs(), brute);
}

TEST(Frm, QueueDoesNotLeakUnbounded) {
  // Lazy deletion keeps stale events around, but after steady simulation
  // the queue must stay within a small multiple of the enabled pairs.
  const ReactionModel m = ads_des_model(1.0, 1.0);
  FrmSimulator sim(m, Configuration(Lattice(16, 16), 2, 0), 7);
  for (int i = 0; i < 20000; ++i) sim.mc_step();
  EXPECT_LT(sim.queue_size(), 40u * sim.configuration().size());
}

TEST(Frm, SameSeedSameTrajectory) {
  auto zgb = models::make_zgb();
  FrmSimulator a(zgb.model, Configuration(Lattice(8, 8), 3, zgb.vacant), 8);
  FrmSimulator b(zgb.model, Configuration(Lattice(8, 8), 3, zgb.vacant), 8);
  for (int i = 0; i < 500; ++i) {
    a.mc_step();
    b.mc_step();
  }
  EXPECT_EQ(a.configuration(), b.configuration());
  EXPECT_DOUBLE_EQ(a.time(), b.time());
}

TEST(Frm, NameIsFrm) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  FrmSimulator sim(m, Configuration(Lattice(2, 2), 2, 0), 1);
  EXPECT_EQ(sim.name(), "FRM");
}

}  // namespace
}  // namespace casurf
