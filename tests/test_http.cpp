// The serve HTTP layer: framing, error mapping, concurrency, and the
// raw-socket abuse cases a JSON client library would never generate.

#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace casurf::serve {
namespace {

/// Open a raw connection, send `wire` verbatim, and return everything the
/// server replies until it closes the connection. For requests the
/// well-formed client helper refuses to produce.
std::string raw_roundtrip(std::uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(Http, EchoRoundTripCarriesMethodTargetAndBody) {
  HttpServer server(0, [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = req.method + "|" + req.target + "|" + req.body;
    return resp;
  });
  ASSERT_NE(server.port(), 0);  // port 0 must resolve to a real ephemeral port

  const HttpResponse get = http_request(server.port(), "GET", "/jobs/7/report");
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(get.content_type, "application/json");
  EXPECT_EQ(get.body, "GET|/jobs/7/report|");

  const HttpResponse post =
      http_request(server.port(), "POST", "/jobs", R"({"model":"zgb"})");
  EXPECT_EQ(post.body, R"(POST|/jobs|{"model":"zgb"})");
}

TEST(Http, HeaderLookupIsCaseInsensitive) {
  HttpServer server(0, [](const HttpRequest& req) {
    const std::string* v = req.header("X-Tenant");
    HttpResponse resp;
    resp.body = v != nullptr ? *v : "<missing>";
    return resp;
  });
  const HttpResponse resp = http_request(server.port(), "GET", "/", "",
                                         {{"x-TENANT", "alice"}});
  EXPECT_EQ(resp.body, "alice");
}

TEST(Http, HandlerExceptionBecomesEscaped500) {
  HttpServer server(0, [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("boom \"quoted\"");
  });
  const HttpResponse resp = http_request(server.port(), "GET", "/");
  EXPECT_EQ(resp.status, 500);
  // The exception text must arrive JSON-escaped, not break the document.
  EXPECT_EQ(resp.body, R"({"error":"boom \"quoted\""})");
}

TEST(Http, ExtraHeadersAndStatusSurviveTheWire) {
  HttpServer server(0, [](const HttpRequest&) {
    HttpResponse resp;
    resp.status = 429;
    resp.extra_headers.emplace_back("Retry-After", "1");
    resp.body = "{}";
    return resp;
  });
  const HttpResponse resp = http_request(server.port(), "POST", "/jobs", "{}");
  EXPECT_EQ(resp.status, 429);
  bool retry_after = false;
  for (const auto& [name, value] : resp.extra_headers) {
    if (name == "retry-after" && value == "1") retry_after = true;
  }
  EXPECT_TRUE(retry_after);
}

TEST(Http, MalformedRequestLineGets400) {
  HttpServer server(0, [](const HttpRequest&) { return HttpResponse{}; });
  const std::string reply = raw_roundtrip(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(reply.find("400 Bad Request"), std::string::npos);
}

TEST(Http, OversizedContentLengthGets413BeforeTheBody) {
  HttpServer server(0, [](const HttpRequest&) { return HttpResponse{}; });
  // Announces a body far over kMaxBodyBytes but never sends a byte of it:
  // the server must refuse up front instead of waiting to buffer 8 GiB.
  const std::string reply = raw_roundtrip(
      server.port(), "POST /jobs HTTP/1.1\r\nContent-Length: 8589934592\r\n\r\n");
  EXPECT_NE(reply.find("413 Payload Too Large"), std::string::npos);
}

TEST(Http, NonNumericContentLengthGets400) {
  HttpServer server(0, [](const HttpRequest&) { return HttpResponse{}; });
  const std::string reply = raw_roundtrip(
      server.port(), "POST /jobs HTTP/1.1\r\nContent-Length: lots\r\n\r\n");
  EXPECT_NE(reply.find("400 Bad Request"), std::string::npos);
}

TEST(Http, BareLfLineEndingsAreTolerated) {
  HttpServer server(0, [](const HttpRequest& req) {
    HttpResponse resp;
    const std::string* v = req.header("x-peer");
    resp.body = req.target + "|" + (v != nullptr ? *v : "<missing>");
    return resp;
  });
  const std::string reply =
      raw_roundtrip(server.port(), "GET /healthz HTTP/1.1\nX-Peer: lf-only\n\n");
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("/healthz|lf-only"), std::string::npos);
}

TEST(Http, ConcurrentClientsAllGetServed) {
  std::atomic<int> hits{0};
  HttpServer server(0, [&](const HttpRequest&) {
    hits.fetch_add(1);
    HttpResponse resp;
    resp.body = "{}";
    return resp;
  });
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (http_request(server.port(), "GET", "/stats").status == 200) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(hits.load(), kThreads * kPerThread);
}

TEST(Http, StopIsIdempotentAndRefusesNewConnections) {
  HttpServer server(0, [](const HttpRequest&) { return HttpResponse{}; });
  const std::uint16_t port = server.port();
  EXPECT_EQ(http_request(port, "GET", "/").status, 200);
  server.stop();
  server.stop();  // second stop must be a no-op, not a double-join
  EXPECT_THROW((void)http_request(port, "GET", "/", "", {}, 500), HttpError);
}

}  // namespace
}  // namespace casurf::serve
