// Cross-module integration tests: every algorithm family simulating the
// same physics must agree where the theory says it must, and differ where
// the paper says it will.

#include <gtest/gtest.h>

#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "models/zgb.hpp"
#include "stats/coverage.hpp"
#include "stats/timeseries.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

class EquilibriumSweep : public ::testing::TestWithParam<Algorithm> {};

TEST_P(EquilibriumSweep, AllAlgorithmsReachLangmuirEquilibrium) {
  // Independent sites: Langmuir coverage k_a / (k_a + k_d) is exact, and
  // every algorithm in the library — exact or approximate — must reproduce
  // it (site-selection correlations cannot matter without coupling).
  // TPNDCA is excluded: batching one type across a whole chunk makes the
  // instantaneous coverage swing for uncoupled single-site models by
  // design (its habitat is pair-reaction models like ZGB).
  const double ka = 1.0, kd = 0.5;
  const ReactionModel m = ads_des_model(ka, kd);
  SimulationOptions opt;
  opt.algorithm = GetParam();
  opt.seed = 17;
  opt.threads = 2;
  auto sim = make_simulator(m, Configuration(Lattice(24, 24), 2, 0), opt);
  sim->advance_to(30.0);
  double avg = 0;
  int n = 0;
  while (sim->time() < 90.0) {
    sim->advance_to(sim->time() + 0.5);
    avg += sim->configuration().coverage(1);
    ++n;
  }
  EXPECT_NEAR(avg / n, ka / (ka + kd), 0.03) << algorithm_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, EquilibriumSweep,
                         ::testing::Values(Algorithm::kRsm, Algorithm::kVssm,
                                           Algorithm::kFrm, Algorithm::kNdca,
                                           Algorithm::kPndca, Algorithm::kLPndca,
                                           Algorithm::kParallelPndca));

TEST(Integration, ZgbReactiveWindowAcrossAlgorithms) {
  // At y = 0.45 the ZGB surface is reactive (not poisoned); RSM and the
  // partitioned CA must agree on the steady O coverage within a few
  // percent (abstract: "experimental data for the simulation of Ziff
  // model").
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(40, 40);
  const auto steady_o = [&](Algorithm a, std::uint64_t seed) {
    SimulationOptions opt;
    opt.algorithm = a;
    opt.seed = seed;
    auto sim = make_simulator(zgb.model, Configuration(lat, 3, zgb.vacant), opt);
    sim->advance_to(15.0);
    double avg = 0;
    int n = 0;
    while (sim->time() < 30.0) {
      sim->advance_to(sim->time() + 0.5);
      avg += sim->configuration().coverage(zgb.o);
      ++n;
    }
    return avg / n;
  };
  const double rsm = steady_o(Algorithm::kRsm, 1);
  const double pndca = steady_o(Algorithm::kPndca, 2);
  const double vssm = steady_o(Algorithm::kVssm, 3);
  EXPECT_NEAR(pndca, rsm, 0.07);
  EXPECT_NEAR(vssm, rsm, 0.07);
  EXPECT_GT(rsm, 0.2);  // reactive: substantial O coverage
  EXPECT_LT(rsm, 0.98);
}

TEST(Integration, ZgbCoPoisonsAtHighY) {
  // Above y2 ~ 0.53 the lattice poisons with CO under any correct
  // algorithm.
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.70, 20.0));
  for (const Algorithm a : {Algorithm::kRsm, Algorithm::kPndca}) {
    SimulationOptions opt;
    opt.algorithm = a;
    opt.seed = 5;
    auto sim = make_simulator(zgb.model, Configuration(Lattice(24, 24), 3, zgb.vacant), opt);
    sim->advance_to(80.0);
    EXPECT_GT(sim->configuration().coverage(zgb.co), 0.95) << algorithm_name(a);
  }
}

TEST(Integration, ZgbOxygenRichAtLowY) {
  // Below y1 ~ 0.39 oxygen dominates the surface (with finite reaction
  // rate the O-poisoned state is approached asymptotically).
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.20, 20.0));
  SimulationOptions opt;
  opt.seed = 6;
  auto sim = make_simulator(zgb.model, Configuration(Lattice(24, 24), 3, zgb.vacant), opt);
  sim->advance_to(80.0);
  EXPECT_GT(sim->configuration().coverage(zgb.o), 0.8);
}

TEST(Integration, LPndcaLimitParametersReproduceRsm) {
  // Paper Fig 8: (m = 1, L = N) and (m = N, L = 1) give the same kinetics
  // as RSM. Compare full ZGB transient trajectories, ensemble-averaged.
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(32, 32);

  const auto trajectory = [&](const SimulationOptions& opt_base, std::uint64_t seed) {
    SimulationOptions opt = opt_base;
    opt.seed = seed;
    auto sim = make_simulator(zgb.model, Configuration(lat, 3, zgb.vacant), opt);
    CoverageRecorder rec({zgb.o});
    run_sampled(*sim, 10.0, 0.5, rec);
    return rec.series(zgb.o);
  };
  const auto mean_of = [&](const SimulationOptions& opt) {
    std::vector<TimeSeries> runs;
    for (std::uint64_t s = 1; s <= 4; ++s) runs.push_back(trajectory(opt, s));
    return ensemble_mean(runs, 100);
  };

  SimulationOptions rsm_opt;
  rsm_opt.algorithm = Algorithm::kRsm;

  SimulationOptions one_chunk;
  one_chunk.algorithm = Algorithm::kLPndca;
  one_chunk.partition = std::make_shared<Partition>(Partition::single_chunk(lat));
  one_chunk.l_trials = lat.size();

  SimulationOptions singletons;
  singletons.algorithm = Algorithm::kLPndca;
  singletons.partition = std::make_shared<Partition>(Partition::singletons(lat));
  singletons.l_trials = 1;

  const TimeSeries rsm = mean_of(rsm_opt);
  EXPECT_LT(mean_abs_difference(rsm, mean_of(one_chunk)), 0.035);
  EXPECT_LT(mean_abs_difference(rsm, mean_of(singletons)), 0.035);
}

TEST(Integration, ObserverSamplesOnGridForEveryAlgorithm) {
  auto zgb = models::make_zgb();
  for (const Algorithm a : {Algorithm::kRsm, Algorithm::kVssm, Algorithm::kNdca,
                            Algorithm::kPndca}) {
    SimulationOptions opt;
    opt.algorithm = a;
    auto sim = make_simulator(zgb.model, Configuration(Lattice(10, 10), 3, zgb.vacant), opt);
    CoverageRecorder rec;
    run_sampled(*sim, 3.0, 0.5, rec);
    // Trial-based methods overshoot each grid point by up to one MC step,
    // so the sample count has one point of slack.
    EXPECT_GE(rec.series(zgb.vacant).size(), 5u) << algorithm_name(a);
  }
}

}  // namespace
}  // namespace casurf
