// The shared JSON layer (obs/json.hpp): the emitter every report artifact
// goes through — run reports, traces, drift profiles — and the parser
// casurf_report reads them back with. The escaper is the security-relevant
// bit: reaction/species/probe names are user-supplied (model files) and may
// contain anything.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"

namespace casurf::obs {
namespace {

std::string quoted(std::string_view s) {
  std::string out;
  json::append_quoted(out, s);
  return out;
}

TEST(JsonWriter, EscapesHostileStrings) {
  EXPECT_EQ(quoted("plain"), "\"plain\"");
  EXPECT_EQ(quoted("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(quoted("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(quoted("nl\ntab\tcr\r"), "\"nl\\ntab\\tcr\\r\"");
  EXPECT_EQ(quoted(std::string_view("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
  EXPECT_EQ(quoted(std::string_view("nul\0byte", 8)), "\"nul\\u0000byte\"");
}

TEST(JsonWriter, EmitsStructuredDocument) {
  json::Writer j;
  j.begin_object();
  j.key("name");
  j.string("x");
  j.key("n");
  j.u64(42);
  j.key("neg");
  j.i64(-7);
  j.key("pi");
  j.number(3.25);
  j.key("bad");
  j.number(std::nan(""));  // not representable: emitted as null
  j.key("flag");
  j.boolean(true);
  j.key("list");
  j.begin_array();
  j.u64(1);
  j.u64(2);
  j.end_array();
  j.end_object();
  EXPECT_EQ(std::move(j).str(),
            "{\"name\":\"x\",\"n\":42,\"neg\":-7,\"pi\":3.25,"
            "\"bad\":null,\"flag\":true,\"list\":[1,2]}");
}

TEST(JsonParser, ParsesScalarsAndContainers) {
  const json::Value v = json::Value::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "hi", "o": {"k": -2}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  ASSERT_EQ(v.at("b").items().size(), 3u);
  EXPECT_TRUE(v.at("b").items()[0].as_bool());
  EXPECT_FALSE(v.at("b").items()[1].as_bool());
  EXPECT_TRUE(v.at("b").items()[2].is_null());
  EXPECT_EQ(v.at("s").as_string(), "hi");
  EXPECT_DOUBLE_EQ(v.at("o").at("k").as_number(), -2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(v.string_or("missing", "dflt"), "dflt");
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
}

TEST(JsonParser, DecodesEscapesAndSurrogates) {
  const json::Value v =
      json::Value::parse(R"(["A\n\t\"\\", "é", "😀"])");
  EXPECT_EQ(v.items()[0].as_string(), "A\n\t\"\\");
  EXPECT_EQ(v.items()[1].as_string(), "\xc3\xa9");          // é
  EXPECT_EQ(v.items()[2].as_string(), "\xf0\x9f\x98\x80");  // 😀 via pair
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW((void)json::Value::parse(""), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("nul"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("1 2"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("\"bad\\q\""), std::runtime_error);
  // Depth bomb: deeper than the parser's recursion limit must throw, not
  // overflow the stack.
  EXPECT_THROW((void)json::Value::parse(std::string(100, '[')), std::runtime_error);
}

TEST(JsonRoundTrip, HostileStringsSurviveWriterThenParser) {
  const std::string hostile[] = {
      "CO\"ads\"", "a\\b\nc\td\re", std::string("embedded\0nul", 12),
      "\x01\x02\x1f", "caf\xc3\xa9 \xf0\x9f\x98\x80"};
  for (const std::string& s : hostile) {
    json::Writer j;
    j.begin_array();
    j.string(s);
    j.end_array();
    const json::Value v = json::Value::parse(std::move(j).str());
    EXPECT_EQ(v.items()[0].as_string(), s);
  }
}

// The satellite's end-to-end guarantee: a probe registered under a hostile
// name must come back byte-identical through the full run-report path
// (emit → parse), not corrupt the document around it.
TEST(JsonRoundTrip, HostileProbeNamesSurviveRunReport) {
  const std::string evil = "timer \"quoted\"\\\n\tname\x01";
  MetricsRegistry reg;
  reg.timer(evil).add_ns(123);
  reg.counter("ctr\n\"x\"").add(7);

  RunInfo info;
  info.algorithm = "alg\"\\\n";
  info.model = "model\twith\ttabs";
  const json::Value doc = json::Value::parse(run_report_json(info, nullptr, &reg));
  EXPECT_EQ(doc.at("schema").as_string(), "casurf-run-report/1");
  EXPECT_EQ(doc.at("run").at("algorithm").as_string(), info.algorithm);
  EXPECT_EQ(doc.at("run").at("model").as_string(), info.model);
  const json::Value& timers = doc.at("metrics").at("timers");
  ASSERT_NE(timers.find(evil), nullptr);
  EXPECT_EQ(timers.at(evil).at("count").as_u64(), 1u);
  ASSERT_NE(doc.at("metrics").at("counters").find("ctr\n\"x\""), nullptr);
}

}  // namespace
}  // namespace casurf::obs
