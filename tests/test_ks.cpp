#include "stats/ks.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {
namespace {

TEST(Ks, ExponentialSamplesAccepted) {
  Xoshiro256 rng(1);
  std::vector<double> samples(3000);
  for (double& s : samples) s = exponential(rng, 3.0);
  const auto r = stats::ks_exponential(samples, 3.0);
  EXPECT_FALSE(r.reject(0.01));
  EXPECT_LT(r.statistic, 0.05);
}

TEST(Ks, WrongRateRejected) {
  Xoshiro256 rng(2);
  std::vector<double> samples(3000);
  for (double& s : samples) s = exponential(rng, 3.0);
  const auto r = stats::ks_exponential(samples, 1.0);  // claim rate 1, truth 3
  EXPECT_TRUE(r.reject(0.01));
}

TEST(Ks, UniformSamplesAccepted) {
  Xoshiro256 rng(3);
  std::vector<double> samples(3000);
  for (double& s : samples) s = uniform01(rng);
  EXPECT_FALSE(stats::ks_uniform01(samples).reject(0.01));
}

TEST(Ks, NonUniformRejected) {
  Xoshiro256 rng(4);
  std::vector<double> samples(3000);
  for (double& s : samples) s = uniform01(rng) * uniform01(rng);  // skewed
  EXPECT_TRUE(stats::ks_uniform01(samples).reject(0.01));
}

TEST(Ks, TooFewSamplesThrows) {
  EXPECT_THROW((void)stats::ks_uniform01({0.1, 0.2}), std::invalid_argument);
  EXPECT_THROW((void)stats::ks_exponential({0.1}, 1.0), std::invalid_argument);
}

TEST(Ks, InvalidRateThrows) {
  std::vector<double> ten(10, 0.5);
  EXPECT_THROW((void)stats::ks_exponential(ten, 0.0), std::invalid_argument);
}

TEST(KolmogorovP, KnownValues) {
  // D * (sqrt(n)+...) = x; Q(0.83) ~ 0.50, Q(1.36) ~ 0.049.
  EXPECT_NEAR(stats::kolmogorov_p(0.83 / 31.75, 1000), 0.5, 0.02);
  EXPECT_NEAR(stats::kolmogorov_p(1.36 / 31.75, 1000), 0.049, 0.005);
  EXPECT_DOUBLE_EQ(stats::kolmogorov_p(0.0, 100), 1.0);
}

TEST(ChiSquareP, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(stats::chi_square_p(0.0, 3), 1.0);
  EXPECT_LT(stats::chi_square_p(1000.0, 3), 1e-10);
  EXPECT_THROW((void)stats::chi_square_p(1.0, 0), std::invalid_argument);
}

TEST(ChiSquareP, KnownQuantiles) {
  // chi2_{0.95, 1} = 3.841; chi2_{0.95, 5} = 11.07; chi2_{0.99, 2} = 9.21.
  EXPECT_NEAR(stats::chi_square_p(3.841, 1), 0.05, 0.003);
  EXPECT_NEAR(stats::chi_square_p(11.07, 5), 0.05, 0.003);
  EXPECT_NEAR(stats::chi_square_p(9.21, 2), 0.01, 0.002);
}

TEST(ChiSquareP, MonotoneDecreasingInStatistic) {
  double last = 1.0;
  for (double x = 0.5; x < 20; x += 0.5) {
    const double p = stats::chi_square_p(x, 4);
    EXPECT_LE(p, last);
    last = p;
  }
}

}  // namespace
}  // namespace casurf
