#include "lattice/lattice.hpp"

#include <gtest/gtest.h>

namespace casurf {
namespace {

TEST(Lattice, SizeAndDimensions) {
  const Lattice lat(7, 5);
  EXPECT_EQ(lat.width(), 7);
  EXPECT_EQ(lat.height(), 5);
  EXPECT_EQ(lat.size(), 35u);
}

TEST(Lattice, IndexCoordRoundTrip) {
  const Lattice lat(11, 4);
  for (SiteIndex i = 0; i < lat.size(); ++i) {
    EXPECT_EQ(lat.index(lat.coord(i)), i);
  }
}

TEST(Lattice, RowMajorOrder) {
  const Lattice lat(10, 10);
  EXPECT_EQ(lat.index({0, 0}), 0u);
  EXPECT_EQ(lat.index({9, 0}), 9u);
  EXPECT_EQ(lat.index({0, 1}), 10u);
  EXPECT_EQ(lat.index({3, 2}), 23u);
}

TEST(Lattice, WrapPositive) {
  const Lattice lat(5, 3);
  EXPECT_EQ(lat.wrap({5, 3}), (Vec2{0, 0}));
  EXPECT_EQ(lat.wrap({7, 4}), (Vec2{2, 1}));
  EXPECT_EQ(lat.wrap({12, 9}), (Vec2{2, 0}));
}

TEST(Lattice, WrapNegative) {
  const Lattice lat(5, 3);
  EXPECT_EQ(lat.wrap({-1, -1}), (Vec2{4, 2}));
  EXPECT_EQ(lat.wrap({-5, -3}), (Vec2{0, 0}));
  EXPECT_EQ(lat.wrap({-6, -4}), (Vec2{4, 2}));
}

TEST(Lattice, NeighborPeriodicity) {
  const Lattice lat(4, 4);
  const SiteIndex corner = lat.index({0, 0});
  EXPECT_EQ(lat.neighbor(corner, {-1, 0}), lat.index({3, 0}));
  EXPECT_EQ(lat.neighbor(corner, {0, -1}), lat.index({0, 3}));
  EXPECT_EQ(lat.neighbor(corner, {1, 1}), lat.index({1, 1}));
}

TEST(Lattice, NeighborTranslationInvariance) {
  // Moving base by t and offset fixed commutes with wrapping:
  // neighbor(s + t, o) == wrap(coord(neighbor(s, o)) + t).
  const Lattice lat(6, 5);
  const Vec2 offset{2, -1};
  const Vec2 t{3, 4};
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    const SiteIndex moved = lat.index(lat.wrap(lat.coord(s) + t));
    const Vec2 a = lat.coord(lat.neighbor(moved, offset));
    const Vec2 b = lat.wrap(lat.coord(lat.neighbor(s, offset)) + t);
    EXPECT_EQ(a, b);
  }
}

TEST(Lattice, NeighborsBatch) {
  const Lattice lat(4, 4);
  const auto ns = lat.neighbors(lat.index({1, 1}), Lattice::von_neumann_offsets());
  ASSERT_EQ(ns.size(), 4u);
  EXPECT_EQ(ns[0], lat.index({2, 1}));
  EXPECT_EQ(ns[1], lat.index({1, 2}));
  EXPECT_EQ(ns[2], lat.index({0, 1}));
  EXPECT_EQ(ns[3], lat.index({1, 0}));
}

TEST(Lattice, OneDimensional) {
  const Lattice lat(9, 1);
  EXPECT_EQ(lat.size(), 9u);
  EXPECT_EQ(lat.neighbor(0, {-1, 0}), 8u);
  EXPECT_EQ(lat.neighbor(8, {1, 0}), 0u);
  // Vertical offsets wrap onto the same row.
  EXPECT_EQ(lat.neighbor(4, {0, 1}), 4u);
}

TEST(Lattice, Equality) {
  EXPECT_EQ(Lattice(4, 5), Lattice(4, 5));
  EXPECT_FALSE(Lattice(4, 5) == Lattice(5, 4));
}

class LatticeSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LatticeSizes, EverySiteHasFourDistinctVonNeumannNeighborsWhenBigEnough) {
  const auto [w, h] = GetParam();
  const Lattice lat(w, h);
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    const auto ns = lat.neighbors(s, Lattice::von_neumann_offsets());
    for (const SiteIndex n : ns) {
      EXPECT_LT(n, lat.size());
      if (w >= 2 && h >= 2) EXPECT_NE(n, s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LatticeSizes,
                         ::testing::Values(std::pair{2, 2}, std::pair{3, 7},
                                           std::pair{8, 2}, std::pair{16, 16},
                                           std::pair{5, 1}));

}  // namespace
}  // namespace casurf
