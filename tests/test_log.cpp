// Structured JSON-lines logging (util/log.hpp): line schema and field
// round-trip through the shared JSON parser, threshold filtering, token
// buckets, the single-write atomicity contract under concurrent writers,
// and the CASURF_METRICS=OFF compile-out behaviour. The suite reconfigures
// the process-global logger per test, which is safe because gtest runs
// tests serially within this binary.

#include "util/log.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"

namespace casurf::log {
namespace {

using obs::json::Value;

std::string temp_log(const char* tag) {
  return testing::TempDir() + "/casurf_log_" + tag + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

std::vector<std::string> lines_of(const std::string& path) {
  std::vector<std::string> out;
  std::string text;
  try {
    text = io::read_file(path);
  } catch (const std::exception&) {
    return out;  // never written — the compiled-out / filtered cases
  }
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    // The atomicity contract: every emitted line is newline-terminated.
    EXPECT_NE(nl, std::string::npos) << "torn final line: " << text.substr(pos);
    if (nl == std::string::npos) nl = text.size();
    out.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return out;
}

TEST(LogLevel, ParseAcceptsTheDocumentedSpellingsOnly) {
  Level level = Level::kError;
  EXPECT_TRUE(parse_level("debug", level));
  EXPECT_EQ(level, Level::kDebug);
  EXPECT_TRUE(parse_level("info", level));
  EXPECT_EQ(level, Level::kInfo);
  EXPECT_TRUE(parse_level("warn", level));
  EXPECT_TRUE(parse_level("error", level));
  EXPECT_TRUE(parse_level("off", level));
  EXPECT_EQ(level, Level::kOff);
  EXPECT_FALSE(parse_level("verbose", level));
  EXPECT_FALSE(parse_level("", level));
  EXPECT_FALSE(parse_level("WARN", level));
  EXPECT_EQ(level, Level::kOff) << "failed parse must not touch out";
  EXPECT_STREQ(to_string(Level::kWarn), "warn");
}

TEST(LogEvent, RoundTripsEveryFieldKindThroughTheJsonParser) {
  if (!kLogCompiled) GTEST_SKIP() << "logging compiled out";
  const std::string path = temp_log("roundtrip");
  ASSERT_EQ(configure(Level::kDebug, path), "");

  Event(Level::kInfo, "test.log", "kinds")
      .str("name", "with \"quotes\" and \\slashes\\\nnewline")
      .u64("big", std::uint64_t{1} << 53)  // Value parses numbers as double
      .i64("neg", -42)
      .f64("pi", 3.5)
      .f64("bad", std::nan(""))  // mirrors obs::json::Writer: NaN → null
      .boolean("flag", true);

  const std::vector<std::string> lines = lines_of(path);
  ASSERT_EQ(lines.size(), 1u);
  const Value v = Value::parse(lines[0]);
  EXPECT_GT(v.at("ts").as_number(), 1e9);  // sane wall clock (2001+)
  EXPECT_GT(v.at("mono_ns").as_u64(), 0u);
  EXPECT_EQ(v.at("level").as_string(), "info");
  EXPECT_EQ(v.at("component").as_string(), "test.log");
  EXPECT_EQ(v.at("event").as_string(), "kinds");
  EXPECT_EQ(v.at("name").as_string(), "with \"quotes\" and \\slashes\\\nnewline");
  EXPECT_EQ(v.at("big").as_u64(), std::uint64_t{1} << 53);
  EXPECT_EQ(v.at("neg").as_number(), -42);
  EXPECT_DOUBLE_EQ(v.at("pi").as_number(), 3.5);
  EXPECT_TRUE(v.at("bad").is_null());
  EXPECT_TRUE(v.at("flag").as_bool());
  ASSERT_EQ(configure(Level::kWarn, ""), "");  // restore the default sink
}

TEST(LogEvent, ThresholdFiltersLowerLevels) {
  if (!kLogCompiled) GTEST_SKIP() << "logging compiled out";
  const std::string path = temp_log("threshold");
  ASSERT_EQ(configure(Level::kWarn, path), "");
  EXPECT_EQ(threshold(), Level::kWarn);

  Event(Level::kDebug, "test.log", "dropped_debug");
  Event(Level::kInfo, "test.log", "dropped_info");
  Event(Level::kWarn, "test.log", "kept_warn");
  Event(Level::kError, "test.log", "kept_error");

  const std::vector<std::string> lines = lines_of(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(Value::parse(lines[0]).at("event").as_string(), "kept_warn");
  EXPECT_EQ(Value::parse(lines[1]).at("event").as_string(), "kept_error");
  ASSERT_EQ(configure(Level::kWarn, ""), "");
}

TEST(LogEvent, OffSinkEmitsNothing) {
  if (!kLogCompiled) GTEST_SKIP() << "logging compiled out";
  const std::string path = temp_log("off");
  ASSERT_EQ(configure(Level::kOff, path), "");
  Event(Level::kError, "test.log", "suppressed");
  EXPECT_TRUE(lines_of(path).empty());
  ASSERT_EQ(configure(Level::kWarn, ""), "");
}

TEST(LogConfigure, UnwritablePathIsAnError) {
  if (!kLogCompiled) GTEST_SKIP() << "logging compiled out";
  const std::string err =
      configure(Level::kInfo, testing::TempDir() + "/no-such-dir/x.jsonl");
  EXPECT_NE(err, "");
  ASSERT_EQ(configure(Level::kWarn, ""), "");
}

TEST(LogConfigure, EnvVariableParsesLevelAndFile) {
  const std::string path = temp_log("env");
  ::setenv("CASURF_LOG", ("level=debug,file=" + path).c_str(), 1);
  EXPECT_EQ(configure_from_env(), "");
  if (kLogCompiled) {
    EXPECT_EQ(threshold(), Level::kDebug);
    Event(Level::kDebug, "test.log", "via_env");
    ASSERT_EQ(lines_of(path).size(), 1u);
  } else {
    // Compiled out, the env degrades silently and nothing is written.
    EXPECT_EQ(threshold(), Level::kOff);
    Event(Level::kError, "test.log", "via_env");
    EXPECT_TRUE(lines_of(path).empty());
  }

  ::setenv("CASURF_LOG", "info", 1);  // bare level shorthand
  EXPECT_EQ(configure_from_env(), "");
  if (kLogCompiled) EXPECT_EQ(threshold(), Level::kInfo);

  ::setenv("CASURF_LOG", "level=bogus", 1);
  if (kLogCompiled) {
    EXPECT_NE(configure_from_env(), "");
  } else {
    EXPECT_EQ(configure_from_env(), "");  // silent even for junk
  }

  ::unsetenv("CASURF_LOG");
  EXPECT_EQ(configure_from_env(), "");  // unset → no change, no error
  if (kLogCompiled) ASSERT_EQ(configure(Level::kWarn, ""), "");
}

TEST(LogConfigure, CompileOutContractMatchesBuildFlavor) {
  if (kLogCompiled) {
    EXPECT_EQ(configure(Level::kInfo, ""), "");
    ASSERT_EQ(configure(Level::kWarn, ""), "");
  } else {
    // Explicit configuration must refuse loudly so --log-level on an OFF
    // build is a usage error, not a silent no-op.
    EXPECT_NE(configure(Level::kInfo, ""), "");
    EXPECT_EQ(threshold(), Level::kOff);
  }
}

TEST(LogRateLimit, BurstThenRefusalThenRefill) {
  if (!kLogCompiled) {
    RateLimit limit(1.0, 5.0);
    EXPECT_FALSE(limit.allow()) << "compiled out, allow() is constant-false";
    return;
  }
  // Effectively no refill within the test's lifetime: exactly burst allowed.
  RateLimit stingy(1e-6, 3.0);
  EXPECT_TRUE(stingy.allow());
  EXPECT_TRUE(stingy.allow());
  EXPECT_TRUE(stingy.allow());
  EXPECT_FALSE(stingy.allow());
  EXPECT_FALSE(stingy.allow());

  // Refill far faster than the calls: never refuses.
  RateLimit generous(1e9, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(generous.allow());
}

TEST(LogEvent, ConcurrentWritersNeverTearLines) {
  if (!kLogCompiled) GTEST_SKIP() << "logging compiled out";
  const std::string path = temp_log("threads");
  ASSERT_EQ(configure(Level::kInfo, path), "");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  // A payload long enough that a torn write would be visible as an
  // unparseable line.
  const std::string payload(256, 'x');
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Event(Level::kInfo, "test.log", "burst")
            .i64("thread", t)
            .i64("seq", i)
            .str("pad", payload);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<std::string> lines = lines_of(path);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<int> seen(kThreads, 0);
  for (const std::string& line : lines) {
    const Value v = Value::parse(line);  // throws on a torn line
    EXPECT_EQ(v.at("pad").as_string(), payload);
    ++seen[static_cast<std::size_t>(v.at("thread").as_u64())];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(seen[t], kPerThread);
  ASSERT_EQ(configure(Level::kWarn, ""), "");
}

}  // namespace
}  // namespace casurf::log
