#include "ca/lpndca.hpp"

#include <gtest/gtest.h>

#include "dmc/rsm.hpp"
#include "models/zgb.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

TEST(LPndca, ValidatesArguments) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const Lattice lat(6, 6);
  EXPECT_THROW(LPndcaSimulator(m, Configuration(lat, 2, 0),
                               Partition::single_chunk(Lattice(4, 4)), 1, 1),
               std::invalid_argument);
  EXPECT_THROW(LPndcaSimulator(m, Configuration(lat, 2, 0),
                               Partition::single_chunk(lat), 1, 0),
               std::invalid_argument);
}

TEST(LPndca, ExactlyNTrialsPerStep) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const Lattice lat(9, 9);  // N = 81, not divisible by L = 10: clipping path
  LPndcaSimulator sim(m, Configuration(lat, 2, 0),
                      Partition::linear_form(lat, 1, 3, 9), 2, 10);
  sim.mc_step();
  EXPECT_EQ(sim.counters().trials, 81u);
  sim.mc_step();
  EXPECT_EQ(sim.counters().trials, 162u);
}

TEST(LPndca, SameSeedSameTrajectory) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  const Partition p = Partition::linear_form(lat, 1, 3, 5);
  LPndcaSimulator a(zgb.model, Configuration(lat, 3, zgb.vacant), p, 5, 7);
  LPndcaSimulator b(zgb.model, Configuration(lat, 3, zgb.vacant), p, 5, 7);
  for (int i = 0; i < 25; ++i) {
    a.mc_step();
    b.mc_step();
  }
  EXPECT_EQ(a.configuration(), b.configuration());
}

TEST(LPndca, SingleChunkFullBatchIsRsmEquilibrium) {
  // m = 1, L = N: the degenerate parameters under which L-PNDCA *is* RSM
  // (paper Fig 8) — sites drawn uniformly with replacement, N per step.
  const double ka = 1.0, kd = 0.5;
  const ReactionModel m = ads_des_model(ka, kd);
  const Lattice lat(24, 24);
  LPndcaSimulator sim(m, Configuration(lat, 2, 0), Partition::single_chunk(lat), 6,
                      lat.size());
  sim.advance_to(30.0);
  double avg = 0;
  for (int i = 0; i < 60; ++i) {
    sim.mc_step();
    avg += sim.configuration().coverage(1);
  }
  EXPECT_NEAR(avg / 60, ka / (ka + kd), 0.02);
}

TEST(LPndca, SingletonsUnitBatchIsRsmEquilibrium) {
  // m = N, L = 1: the other exact-RSM limit.
  const double ka = 1.0, kd = 0.5;
  const ReactionModel m = ads_des_model(ka, kd);
  const Lattice lat(24, 24);
  LPndcaSimulator sim(m, Configuration(lat, 2, 0), Partition::singletons(lat), 7, 1);
  sim.advance_to(30.0);
  double avg = 0;
  for (int i = 0; i < 60; ++i) {
    sim.mc_step();
    avg += sim.configuration().coverage(1);
  }
  EXPECT_NEAR(avg / 60, ka / (ka + kd), 0.02);
}

TEST(LPndca, LargeLStillConservesTrialBudget) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const Lattice lat(10, 10);
  LPndcaSimulator sim(m, Configuration(lat, 2, 0),
                      Partition::linear_form(lat, 1, 3, 5), 8, 1000000);
  sim.mc_step();  // L is clipped to the remaining budget
  EXPECT_EQ(sim.counters().trials, 100u);
}

TEST(LPndca, AccessorsReportParameters) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const Lattice lat(10, 10);
  LPndcaSimulator sim(m, Configuration(lat, 2, 0),
                      Partition::linear_form(lat, 1, 3, 5), 9, 42);
  EXPECT_EQ(sim.trials_per_batch(), 42u);
  EXPECT_EQ(sim.partition().num_chunks(), 5u);
  EXPECT_EQ(sim.name(), "L-PNDCA");
}

TEST(LPndca, ZgbCoverageBoundedAndReactive) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(30, 30);
  LPndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant),
                      Partition::linear_form(lat, 1, 3, 5), 10, 100);
  sim.advance_to(15.0);
  const double co = sim.configuration().coverage(zgb.co);
  const double o = sim.configuration().coverage(zgb.o);
  EXPECT_GE(co, 0.0);
  EXPECT_LE(co + o, 1.0);
  // Reactive regime: the surface is not poisoned by either species.
  EXPECT_LT(co, 0.95);
  EXPECT_LT(o, 0.98);
}

}  // namespace
}  // namespace casurf
