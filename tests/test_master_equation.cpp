#include "me/master_equation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dmc/vssm.hpp"
#include "models/zgb.hpp"
#include "stats/ensemble.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

TEST(MasterEquation, StateSpaceSize) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const MasterEquation me(m, Lattice(3, 1));
  EXPECT_EQ(me.num_states(), 8u);  // 2^3
  const auto zgb = models::make_zgb();
  const MasterEquation me_zgb(zgb.model, Lattice(2, 2));
  EXPECT_EQ(me_zgb.num_states(), 81u);  // 3^4
}

TEST(MasterEquation, RefusesHugeStateSpaces) {
  const auto zgb = models::make_zgb();
  EXPECT_THROW(MasterEquation(zgb.model, Lattice(10, 10)), std::invalid_argument);
}

TEST(MasterEquation, StateIndexRoundTrip) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const MasterEquation me(m, Lattice(2, 2));
  for (std::size_t i = 0; i < me.num_states(); ++i) {
    EXPECT_EQ(me.state_index(me.state(i)), i);
  }
}

TEST(MasterEquation, GeneratorConservesProbability) {
  // Column sums of Q vanish: d/dt sum P = 0.
  const auto zgb = models::make_zgb();
  const MasterEquation me(zgb.model, Lattice(2, 1));
  std::vector<double> p(me.num_states(), 1.0 / me.num_states());
  std::vector<double> dp;
  me.apply_generator(p, dp);
  double total = 0;
  for (const double v : dp) total += v;
  EXPECT_NEAR(total, 0.0, 1e-12);
}

TEST(MasterEquation, SingleSiteAnalyticSolution) {
  // One site, A <-> *: P_A(t) = (ka/(ka+kd)) (1 - exp(-(ka+kd) t)).
  const double ka = 2.0, kd = 0.5;
  const ReactionModel m = ads_des_model(ka, kd);
  const MasterEquation me(m, Lattice(1, 1));
  const Configuration empty(Lattice(1, 1), 2, 0);
  for (const double t : {0.1, 0.5, 1.0, 3.0}) {
    const auto p = me.evolve(me.delta(empty), t, 1e-3);
    const double expected = ka / (ka + kd) * (1.0 - std::exp(-(ka + kd) * t));
    EXPECT_NEAR(me.expected_coverage(p, 1), expected, 1e-6) << "t=" << t;
  }
}

TEST(MasterEquation, IndependentSitesFactorize) {
  // For uncoupled sites the N-site coverage equals the 1-site solution.
  const double ka = 1.0, kd = 1.0;
  const ReactionModel m = ads_des_model(ka, kd);
  const MasterEquation one(m, Lattice(1, 1));
  const MasterEquation four(m, Lattice(2, 2));
  const auto p1 = one.evolve(one.delta(Configuration(Lattice(1, 1), 2, 0)), 0.7);
  const auto p4 = four.evolve(four.delta(Configuration(Lattice(2, 2), 2, 0)), 0.7);
  EXPECT_NEAR(one.expected_coverage(p1, 1), four.expected_coverage(p4, 1), 1e-9);
}

TEST(MasterEquation, EvolveKeepsDistributionValid) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.5, 5.0));
  const MasterEquation me(zgb.model, Lattice(2, 2));
  const auto p = me.evolve(me.delta(Configuration(Lattice(2, 2), 3, zgb.vacant)), 2.0);
  double total = 0;
  for (const double v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MasterEquation, ZgbEnsembleMatchesExactCoverage) {
  // The headline check: VSSM ensembles converge to the exact ME marginal.
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.5, 5.0));
  const Lattice lat(2, 2);
  const MasterEquation me(zgb.model, lat);
  const Configuration initial(lat, 3, zgb.vacant);
  const double t = 1.5;

  const auto p = me.evolve(me.delta(initial), t, 1e-3);
  const double exact_o = me.expected_coverage(p, zgb.o);
  const double exact_co = me.expected_coverage(p, zgb.co);

  const auto result_o = run_ensemble(
      [&](std::uint64_t seed) {
        return std::make_unique<VssmSimulator>(zgb.model, initial, seed);
      },
      [&](const Simulator& sim) { return sim.configuration().coverage(zgb.o); },
      3000, t, t, 2, 100);
  const auto result_co = run_ensemble(
      [&](std::uint64_t seed) {
        return std::make_unique<VssmSimulator>(zgb.model, initial, seed);
      },
      [&](const Simulator& sim) { return sim.configuration().coverage(zgb.co); },
      3000, t, t, 2, 100);

  // 3000 replicas of a 4-site system: stderr ~ 0.005; allow 4 sigma.
  EXPECT_NEAR(result_o.mean.values().back(), exact_o, 0.02);
  EXPECT_NEAR(result_co.mean.values().back(), exact_co, 0.02);
}

TEST(MasterEquation, TransitionCountMatchesHandCount) {
  // 1-site ads/des: 2 states, one transition each way.
  const ReactionModel m = ads_des_model(1.0, 2.0);
  const MasterEquation me(m, Lattice(1, 1));
  EXPECT_EQ(me.num_states(), 2u);
  EXPECT_EQ(me.num_transitions(), 2u);
}

TEST(MasterEquation, StationaryMatchesLangmuirProductMeasure) {
  // Independent ads/des sites: the stationary distribution is a product of
  // Bernoulli(ka / (ka + kd)) marginals.
  const double ka = 2.0, kd = 1.0;
  const ReactionModel m = ads_des_model(ka, kd);
  const MasterEquation me(m, Lattice(3, 1));
  const auto pi = me.stationary();
  const double theta = ka / (ka + kd);
  EXPECT_NEAR(me.expected_coverage(pi, 1), theta, 1e-6);
  // Spot-check one full state probability: P(A A A) = theta^3.
  Configuration all_a(Lattice(3, 1), 2, 1);
  EXPECT_NEAR(pi[me.state_index(all_a)], theta * theta * theta, 1e-6);
}

TEST(MasterEquation, StationaryIsFixedPointOfGenerator) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.5, 5.0));
  const MasterEquation me(zgb.model, Lattice(2, 1));
  const auto pi = me.stationary();
  std::vector<double> dpi;
  me.apply_generator(pi, dpi);
  for (const double v : dpi) EXPECT_NEAR(v, 0.0, 1e-8);
}

TEST(MasterEquation, EvolveConvergesToStationary) {
  const double ka = 1.0, kd = 3.0;
  const ReactionModel m = ads_des_model(ka, kd);
  const MasterEquation me(m, Lattice(2, 2));
  const auto pi = me.stationary();
  const auto p_long =
      me.evolve(me.delta(Configuration(Lattice(2, 2), 2, 0)), 20.0, 1e-2);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(p_long[i], pi[i], 1e-6) << "state " << i;
  }
}

TEST(MasterEquation, EvolveValidatesArguments) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const MasterEquation me(m, Lattice(2, 1));
  EXPECT_THROW((void)me.evolve(std::vector<double>(3, 0.0), 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)me.evolve(std::vector<double>(4, 0.25), -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace casurf
