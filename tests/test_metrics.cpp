#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.hpp"
#include "models/diffusion.hpp"
#include "obs/run_report.hpp"

namespace casurf::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Timer, TracksTotalCountAndMax) {
  Timer t;
  t.add_ns(10);
  t.add_ns(30);
  t.add_ns(20);
  EXPECT_EQ(t.total_ns(), 60u);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.max_ns(), 30u);
  EXPECT_DOUBLE_EQ(t.mean_ns(), 20.0);
}

TEST(Timer, MeanOfEmptyTimerIsZero) {
  const Timer t;
  EXPECT_DOUBLE_EQ(t.mean_ns(), 0.0);
}

TEST(ScopedTimerTest, NullTimerIsANoOp) {
  // The metrics-off fast path: must not crash, must not record anywhere.
  const ScopedTimer span(nullptr);
}

TEST(ScopedTimerTest, RecordsOneSpan) {
  Timer t;
  { const ScopedTimer span(&t); }
  EXPECT_EQ(t.count(), 1u);
}

TEST(HistogramTest, BucketsByBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(HistogramTest, BucketLimitsAreInclusiveUpperBounds) {
  EXPECT_EQ(Histogram::bucket_limit(0), 0u);
  EXPECT_EQ(Histogram::bucket_limit(1), 1u);
  EXPECT_EQ(Histogram::bucket_limit(2), 3u);
  EXPECT_EQ(Histogram::bucket_limit(10), 1023u);
  EXPECT_EQ(Histogram::bucket_limit(64), ~std::uint64_t{0});
}

TEST(HistogramTest, RecordsSumCountAndBuckets) {
  Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 2u);  // 5 has bit width 3
  EXPECT_DOUBLE_EQ(h.mean(), 10.0 / 3.0);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x/count");
  Counter& b = reg.counter("x/count");
  EXPECT_EQ(&a, &b);
  Timer& ta = reg.timer("x/time");
  Timer& tb = reg.timer("x/time");
  EXPECT_EQ(&ta, &tb);
  Histogram& ha = reg.histogram("x/hist");
  Histogram& hb = reg.histogram("x/hist");
  EXPECT_EQ(&ha, &hb);
}

TEST(MetricsRegistryTest, ReferencesStayStableAcrossRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.counter("a");
  first.add(7);
  // Registering many more probes must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) reg.counter("probe" + std::to_string(i));
  first.add(1);
  EXPECT_EQ(reg.counter("a").value(), 8u);
}

TEST(MetricsRegistryTest, SnapshotsAreSortedByName) {
  MetricsRegistry reg;
  reg.counter("zebra").add(1);
  reg.counter("alpha").add(2);
  reg.counter("middle").add(3);
  const auto snap = reg.counters();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "middle");
  EXPECT_EQ(snap[2].name, "zebra");
  EXPECT_EQ(snap[0].value, 2u);
}

TEST(MetricsRegistryTest, SnapshotCopiesHistogramBuckets) {
  MetricsRegistry reg;
  reg.histogram("h").record(6);
  const auto snap = reg.histograms();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 1u);
  EXPECT_EQ(snap[0].sum, 6u);
  EXPECT_EQ(snap[0].buckets[Histogram::bucket_of(6)], 1u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUseIsSafe) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared").add();
        reg.timer("t" + std::to_string(i % 8)).add_ns(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared").value(), 800u);
  EXPECT_EQ(reg.timers().size(), 8u);
}

TEST(RunReport, EmitsSchemaAndSections) {
  MetricsRegistry reg;
  reg.counter("demo/count").add(3);
  reg.timer("demo/time").add_ns(1000);
  RunInfo info;
  info.algorithm = "RSM";
  info.model = "zgb";
  info.width = 10;
  info.height = 10;
  info.seed = 42;
  const std::string json = run_report_json(info, nullptr, &reg);
  EXPECT_NE(json.find("\"schema\":\"casurf-run-report/1\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"RSM\""), std::string::npos);
  EXPECT_NE(json.find("\"demo/count\""), std::string::npos);
  EXPECT_NE(json.find("\"demo/time\""), std::string::npos);
  EXPECT_NE(json.find("\"communicator\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity for hand-rolled JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(RunReport, ThreadBalanceDerivedFromWorkerBusyTimers) {
  MetricsRegistry reg;
  reg.timer("threads/busy/worker0").add_ns(3000);
  reg.timer("threads/busy/worker1").add_ns(1000);
  const std::string json = run_report_json(RunInfo{}, nullptr, &reg);
  EXPECT_NE(json.find("\"thread_balance\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  // imbalance = max / mean = 3000 / 2000 = 1.5
  EXPECT_NE(json.find("1.5"), std::string::npos);
}

TEST(RunReport, PerReactionCountersComeFromTheSimulator) {
  const models::DiffusionModel diff = models::make_diffusion(1.0);
  class OneStep final : public Simulator {
   public:
    OneStep(const ReactionModel& m, Configuration c) : Simulator(m, std::move(c)) {}
    void mc_step() override {}
    [[nodiscard]] std::string name() const override { return "stub"; }
  };
  OneStep sim(diff.model, Configuration(Lattice(4, 4), 2, diff.vacant));
  const std::string json = run_report_json(RunInfo{}, &sim, nullptr);
  // One entry per reaction of the model, labelled by the reaction name.
  EXPECT_NE(json.find("\"per_reaction\""), std::string::npos);
  EXPECT_NE(json.find(diff.model.reaction(0).name()), std::string::npos);
}

}  // namespace
}  // namespace casurf::obs
