// Metrics must be observation-only: attaching a registry may not perturb
// the trajectory of any simulator by a single bit. Each algorithm runs
// twice from the same seed — once bare, once instrumented — and the raw
// configuration bytes, simulated time, and every counter must agree
// exactly at the end.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "models/zgb.hpp"
#include "obs/metrics.hpp"

namespace casurf {
namespace {

class MetricsIdentity : public ::testing::TestWithParam<Algorithm> {};

TEST_P(MetricsIdentity, TrajectoryBitIdenticalWithAndWithoutMetrics) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(20, 20);
  SimulationOptions opt;
  opt.algorithm = GetParam();
  opt.seed = 1234;
  // Exercise the rate-cache recheck path where the algorithm supports it.
  opt.chunk_policy = ChunkPolicy::kRateWeighted;

  const auto run = [&](obs::MetricsRegistry* registry) {
    auto sim = make_simulator(zgb.model, Configuration(lat, 3, zgb.vacant), opt);
    if (registry != nullptr) sim->set_metrics(registry);
    for (int i = 0; i < 5; ++i) sim->mc_step();
    sim->advance_to(sim->time() + 0.01);
    return sim;
  };

  obs::MetricsRegistry registry;
  const auto bare = run(nullptr);
  const auto instrumented = run(&registry);

  EXPECT_TRUE(std::ranges::equal(bare->configuration().raw(),
                                 instrumented->configuration().raw()));
  // Bitwise: time is accumulated through the identical RNG draws.
  EXPECT_EQ(bare->time(), instrumented->time());
  EXPECT_EQ(bare->counters().trials, instrumented->counters().trials);
  EXPECT_EQ(bare->counters().executed, instrumented->counters().executed);
  EXPECT_EQ(bare->counters().steps, instrumented->counters().steps);
  EXPECT_EQ(bare->counters().executed_per_type,
            instrumented->counters().executed_per_type);

  // The instrumented run must actually have recorded something: every
  // algorithm times at least its step phase. (Under CASURF_METRICS=OFF the
  // durations compile out to zero, but span counts still accumulate.)
  bool saw_step_timer = false;
  for (const auto& t : registry.timers()) {
    if (t.count > 0 && t.name.find("/step") != std::string::npos) {
      saw_step_timer = true;
    }
  }
  EXPECT_TRUE(saw_step_timer) << "no */step timer recorded any span";
}

TEST_P(MetricsIdentity, DetachRestoresUninstrumentedOperation) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  SimulationOptions opt;
  opt.algorithm = GetParam();
  opt.seed = 99;
  auto sim = make_simulator(zgb.model, Configuration(Lattice(10, 10), 3, zgb.vacant), opt);

  obs::MetricsRegistry registry;
  sim->set_metrics(&registry);
  sim->mc_step();
  sim->set_metrics(nullptr);
  EXPECT_EQ(sim->metrics(), nullptr);
  const auto timers_before = registry.timers();
  sim->mc_step();  // must not touch the detached registry
  const auto timers_after = registry.timers();
  ASSERT_EQ(timers_before.size(), timers_after.size());
  for (std::size_t i = 0; i < timers_before.size(); ++i) {
    EXPECT_EQ(timers_before[i].count, timers_after[i].count) << timers_before[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MetricsIdentity,
                         ::testing::Values(Algorithm::kRsm, Algorithm::kVssm,
                                           Algorithm::kFrm, Algorithm::kNdca,
                                           Algorithm::kPndca, Algorithm::kLPndca,
                                           Algorithm::kTPndca,
                                           Algorithm::kParallelPndca),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           std::string name = algorithm_name(info.param);
                           // Test names must be alphanumeric ("L-PNDCA",
                           // "PNDCA(threads)" are not).
                           std::erase_if(name, [](char c) {
                             return (std::isalnum(static_cast<unsigned char>(c)) == 0);
                           });
                           return name;
                         });

}  // namespace
}  // namespace casurf
