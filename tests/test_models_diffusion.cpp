#include "models/diffusion.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"
#include "partition/conflict.hpp"

namespace casurf::models {
namespace {

TEST(DiffusionModel, FourHopOrientations) {
  const DiffusionModel d = make_diffusion(2.0);
  EXPECT_EQ(d.model.num_reactions(), 4u);
  for (ReactionIndex i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(d.model.reaction(i).rate(), 0.5);
  }
  EXPECT_DOUBLE_EQ(d.model.total_rate(), 2.0);
}

TEST(DiffusionModel, SingleFileHasOnlyHorizontalHops) {
  const DiffusionModel d = make_single_file(1.0);
  EXPECT_EQ(d.model.num_reactions(), 2u);
  EXPECT_EQ(d.model.reaction(0).transforms()[1].offset, (Vec2{1, 0}));
  EXPECT_EQ(d.model.reaction(1).transforms()[1].offset, (Vec2{-1, 0}));
}

TEST(DiffusionModel, ParticleNumberConservedUnderRsm) {
  const DiffusionModel d = make_diffusion();
  Configuration cfg(Lattice(16, 16), 2, d.vacant);
  for (SiteIndex s = 0; s < 64; ++s) cfg.set(s * 3 % 256, d.particle);
  const std::uint64_t before = cfg.count(d.particle);
  RsmSimulator sim(d.model, std::move(cfg), 1);
  for (int i = 0; i < 200; ++i) sim.mc_step();
  EXPECT_EQ(sim.configuration().count(d.particle), before);
}

TEST(DiffusionModel, ParticleNumberConservedUnderVssm) {
  const DiffusionModel d = make_diffusion();
  Configuration cfg(Lattice(12, 12), 2, d.vacant);
  for (SiteIndex s = 0; s < 40; ++s) cfg.set(s, d.particle);
  VssmSimulator sim(d.model, std::move(cfg), 2);
  for (int i = 0; i < 5000; ++i) sim.mc_step();
  EXPECT_EQ(sim.configuration().count(d.particle), 40u);
}

TEST(DiffusionModel, Fig2ConflictIsVisibleInOffsets) {
  // Two particles flanking one empty site (paper Fig 2) conflict: anchors
  // two apart along an axis must never share a chunk.
  const DiffusionModel d = make_diffusion();
  const auto offsets = conflict_offsets(d.model);
  EXPECT_NE(std::find(offsets.begin(), offsets.end(), Vec2{2, 0}), offsets.end());
  EXPECT_NE(std::find(offsets.begin(), offsets.end(), Vec2{-2, 0}), offsets.end());
}

TEST(DiffusionModel, HopsMoveParticles) {
  const DiffusionModel d = make_diffusion(1.0);
  Configuration cfg(Lattice(8, 8), 2, d.vacant);
  cfg.set(Vec2{4, 4}, d.particle);
  RsmSimulator sim(d.model, std::move(cfg), 3);
  sim.advance_to(50.0);
  EXPECT_EQ(sim.configuration().count(d.particle), 1u);
  EXPECT_GT(sim.counters().executed, 0u);
}

TEST(DiffusionModel, FullLatticeIsFrozen) {
  const DiffusionModel d = make_diffusion();
  Configuration cfg(Lattice(6, 6), 2, d.particle);  // no vacancies
  RsmSimulator sim(d.model, std::move(cfg), 4);
  for (int i = 0; i < 50; ++i) sim.mc_step();
  EXPECT_EQ(sim.counters().executed, 0u);
}

TEST(DiffusionModel, RejectsNonPositiveRate) {
  EXPECT_THROW((void)make_diffusion(0.0), std::invalid_argument);
  EXPECT_THROW((void)make_single_file(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace casurf::models
