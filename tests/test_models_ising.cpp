#include "models/ising.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"

namespace casurf::models {
namespace {

TEST(IsingModel, ThirtyTwoReactionTypes) {
  const IsingModel ising = make_ising(0.5);
  EXPECT_EQ(ising.model.num_reactions(), 32u);
  EXPECT_NO_THROW(ising.model.validate());
}

TEST(IsingModel, GlauberRatesMatchFormula) {
  const double beta = 0.7;
  const IsingModel ising = make_ising(beta);
  // flip_up_0: no aligned neighbors, dE = -8J; flip_up_15: all aligned,
  // dE = +8J.
  const double w0 = 1.0 / (1.0 + std::exp(beta * -8.0));
  const double w4 = 1.0 / (1.0 + std::exp(beta * 8.0));
  EXPECT_NEAR(ising.model.reaction(0).rate(), w0, 1e-12);
  EXPECT_NEAR(ising.model.reaction(15).rate(), w4, 1e-12);
}

TEST(IsingModel, DetailedBalanceOfRates) {
  // w(dE) / w(-dE) = exp(-beta dE) for every aligned count h (the flip
  // with h aligned reverses to a flip with 4 - h aligned).
  const double beta = 0.45;
  const IsingModel ising = make_ising(beta);
  for (int h = 0; h <= 4; ++h) {
    const double de = 2.0 * (2.0 * h - 4.0);
    const double w_fwd = 1.0 / (1.0 + std::exp(beta * de));
    const double w_bwd = 1.0 / (1.0 + std::exp(-beta * de));
    EXPECT_NEAR(w_fwd / w_bwd, std::exp(-beta * de), 1e-12) << "h=" << h;
  }
}

TEST(IsingModel, ExactlyOneArrangementEnabledPerSite) {
  // The 16 arrangements per spin are mutually exclusive and exhaustive:
  // at any site exactly one of the 32 types is enabled.
  const IsingModel ising = make_ising(0.5);
  Configuration cfg(Lattice(6, 6), 2, ising.down);
  // Scatter some up spins.
  for (SiteIndex s = 0; s < 36; s += 5) cfg.set(s, ising.up);
  for (SiteIndex s = 0; s < cfg.size(); ++s) {
    int enabled = 0;
    for (ReactionIndex i = 0; i < 32; ++i) {
      if (ising.model.reaction(i).enabled(cfg, s)) ++enabled;
    }
    EXPECT_EQ(enabled, 1) << "site " << s;
  }
}

TEST(IsingModel, MagnetizationHelpers) {
  const IsingModel ising = make_ising(0.5);
  Configuration all_up(Lattice(4, 4), 2, ising.up);
  EXPECT_DOUBLE_EQ(ising.magnetization(all_up), 1.0);
  EXPECT_DOUBLE_EQ(ising.energy_per_site(all_up), -2.0);  // ground state
  EXPECT_DOUBLE_EQ(ising.staggered_magnetization(all_up), 0.0);

  Configuration checker(Lattice(4, 4), 2, ising.down);
  for (SiteIndex s = 0; s < 16; ++s) {
    const Vec2 p = checker.lattice().coord(s);
    if ((p.x + p.y) % 2 == 0) checker.set(s, ising.up);
  }
  EXPECT_DOUBLE_EQ(ising.magnetization(checker), 0.0);
  EXPECT_DOUBLE_EQ(ising.energy_per_site(checker), 2.0);  // anti-ground
  EXPECT_DOUBLE_EQ(ising.staggered_magnetization(checker), 1.0);
}

TEST(IsingModel, LowTemperatureStaysOrdered) {
  const IsingModel ising = make_ising(0.8);  // well below Tc
  RsmSimulator sim(ising.model, Configuration(Lattice(16, 16), 2, ising.up), 1);
  for (int i = 0; i < 200; ++i) sim.mc_step();
  EXPECT_GT(ising.magnetization(sim.configuration()), 0.9);
}

TEST(IsingModel, HighTemperatureDisorders) {
  const IsingModel ising = make_ising(0.1);  // far above Tc
  RsmSimulator sim(ising.model, Configuration(Lattice(16, 16), 2, ising.up), 2);
  for (int i = 0; i < 400; ++i) sim.mc_step();
  EXPECT_LT(std::abs(ising.magnetization(sim.configuration())), 0.35);
  EXPECT_GT(ising.energy_per_site(sim.configuration()), -1.0);
}

TEST(IsingModel, EnergyDecreasesWithCoupling) {
  double last_energy = 10;
  for (const double beta : {0.1, 0.3, 0.6}) {
    const IsingModel ising = make_ising(beta);
    VssmSimulator sim(ising.model, Configuration(Lattice(12, 12), 2, ising.up), 3);
    for (int i = 0; i < 40000; ++i) sim.mc_step();
    const double e = ising.energy_per_site(sim.configuration());
    EXPECT_LT(e, last_energy) << "beta=" << beta;
    last_energy = e;
  }
}

TEST(IsingModel, RsmMeltsCheckerboardFast) {
  // In a perfect checkerboard every flip releases 8J, so sequential
  // dynamics destroys the staggered order almost immediately.
  const IsingModel ising = make_ising(1.0);
  Configuration checker(Lattice(16, 16), 2, ising.down);
  for (SiteIndex s = 0; s < checker.size(); ++s) {
    const Vec2 p = checker.lattice().coord(s);
    if ((p.x + p.y) % 2 == 0) checker.set(s, ising.up);
  }
  RsmSimulator sim(ising.model, std::move(checker), 4);
  for (int i = 0; i < 60; ++i) sim.mc_step();
  EXPECT_LT(std::abs(ising.staggered_magnetization(sim.configuration())), 0.4);
}

TEST(SynchronousIsing, CheckerboardBlinksForever) {
  // The Vichniac degeneracy (paper section 4, ref [19]): under fully
  // synchronous heat-bath updates the checkerboard is a stable period-2
  // attractor — the staggered magnetization flips sign every step and
  // never decays.
  const IsingModel ising = make_ising(1.0);
  Configuration checker(Lattice(16, 16), 2, ising.down);
  for (SiteIndex s = 0; s < checker.size(); ++s) {
    const Vec2 p = checker.lattice().coord(s);
    if ((p.x + p.y) % 2 == 0) checker.set(s, ising.up);
  }
  SynchronousHeatBathIsing ca(ising, std::move(checker), 5);
  double prev = ising.staggered_magnetization(ca.configuration());
  for (int i = 0; i < 50; ++i) {
    ca.step();
    const double cur = ising.staggered_magnetization(ca.configuration());
    EXPECT_GT(std::abs(cur), 0.9) << "step " << i;
    EXPECT_LT(prev * cur, 0.0) << "step " << i;  // sign alternates
    prev = cur;
  }
}

TEST(SynchronousIsing, DeterministicForSeed) {
  const IsingModel ising = make_ising(0.5);
  SynchronousHeatBathIsing a(ising, Configuration(Lattice(8, 8), 2, ising.up), 7);
  SynchronousHeatBathIsing b(ising, Configuration(Lattice(8, 8), 2, ising.up), 7);
  a.run(20);
  b.run(20);
  EXPECT_EQ(a.configuration(), b.configuration());
}

TEST(IsingModel, RejectsBadParameters) {
  EXPECT_THROW((void)make_ising(-0.1), std::invalid_argument);
  EXPECT_THROW((void)make_ising(0.5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace casurf::models
