#include "models/pt100.hpp"

#include <gtest/gtest.h>

#include "core/observer.hpp"
#include "dmc/rsm.hpp"
#include "stats/coverage.hpp"
#include "stats/oscillation.hpp"

namespace casurf::models {
namespace {

TEST(Pt100Model, FiveSpeciesDomain) {
  const Pt100Model pt = make_pt100();
  EXPECT_EQ(pt.model.species().size(), 5u);
  EXPECT_EQ(pt.model.species().name(pt.hex_vac), "*h");
  EXPECT_EQ(pt.model.species().name(pt.hex_co), "COh");
  EXPECT_EQ(pt.model.species().name(pt.sq_vac), "*s");
  EXPECT_EQ(pt.model.species().name(pt.sq_co), "COs");
  EXPECT_EQ(pt.model.species().name(pt.sq_o), "Os");
}

TEST(Pt100Model, ValidatesAgainstDomain) {
  const Pt100Model pt = make_pt100();
  EXPECT_NO_THROW(pt.model.validate());
}

TEST(Pt100Model, RejectsNonPositiveRates) {
  Pt100Params p;
  p.co_des = 0;
  EXPECT_THROW((void)make_pt100(p), std::invalid_argument);
  Pt100Params q;
  q.nucleation = 0;
  EXPECT_THROW((void)make_pt100(q), std::invalid_argument);
}

TEST(Pt100Model, O2AdsorbsOnlyOnSquarePhase) {
  const Pt100Model pt = make_pt100();
  Configuration hex_cfg(Lattice(4, 4), 5, pt.hex_vac);
  Configuration sq_cfg(Lattice(4, 4), 5, pt.sq_vac);
  for (ReactionIndex i = 0; i < pt.model.num_reactions(); ++i) {
    const ReactionType& rt = pt.model.reaction(i);
    if (rt.name().starts_with("O2_ads")) {
      EXPECT_FALSE(rt.enabled(hex_cfg, 0)) << rt.name();
      EXPECT_TRUE(rt.enabled(sq_cfg, 0)) << rt.name();
    }
  }
}

TEST(Pt100Model, LiftRequiresSquareNeighborInFrontMode) {
  const Pt100Model pt = make_pt100();  // front propagation on by default
  Configuration cfg(Lattice(4, 4), 5, pt.hex_vac);
  cfg.set(Vec2{1, 1}, pt.hex_co);
  // No square-phase site anywhere: only nucleation can fire.
  std::size_t lift_enabled = 0;
  for (ReactionIndex i = 0; i < pt.model.num_reactions(); ++i) {
    const ReactionType& rt = pt.model.reaction(i);
    if (rt.name().starts_with("lift_front") &&
        rt.enabled(cfg, cfg.lattice().index({1, 1}))) {
      ++lift_enabled;
    }
  }
  EXPECT_EQ(lift_enabled, 0u);
  // Put a square neighbor next to it: exactly one orientation enables.
  cfg.set(Vec2{2, 1}, pt.sq_vac);
  for (ReactionIndex i = 0; i < pt.model.num_reactions(); ++i) {
    const ReactionType& rt = pt.model.reaction(i);
    if (rt.name().starts_with("lift_front") &&
        rt.enabled(cfg, cfg.lattice().index({1, 1}))) {
      ++lift_enabled;
    }
  }
  EXPECT_EQ(lift_enabled, 1u);
}

TEST(Pt100Model, PhaseAndMassBalance) {
  const Pt100Model pt = make_pt100();
  RsmSimulator sim(pt.model, Configuration(Lattice(24, 24), 5, pt.hex_vac), 5);
  for (int i = 0; i < 300; ++i) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  std::uint64_t lift = 0, restore = 0, o2 = 0, co2 = 0;
  for (ReactionIndex i = 0; i < pt.model.num_reactions(); ++i) {
    const std::string& name = pt.model.reaction(i).name();
    if (name.starts_with("lift")) lift += per[i];
    if (name.starts_with("restore")) restore += per[i];
    if (name.starts_with("O2_ads")) o2 += per[i];
    if (name.starts_with("CO2_")) co2 += per[i];
  }
  const auto& cfg = sim.configuration();
  // Square-phase sites are created by lift and destroyed by restore only.
  const std::uint64_t sq_sites =
      cfg.count(pt.sq_vac) + cfg.count(pt.sq_co) + cfg.count(pt.sq_o);
  EXPECT_EQ(sq_sites, lift - restore);
  // O is created two at a time, destroyed one per CO2.
  EXPECT_EQ(cfg.count(pt.sq_o), 2 * o2 - co2);
}

TEST(Pt100Model, CoverageHelpersSumCorrectly) {
  const Pt100Model pt = make_pt100();
  Configuration cfg(Lattice(10, 10), 5, pt.hex_vac);
  for (SiteIndex s = 0; s < 10; ++s) cfg.set(s, pt.hex_co);
  for (SiteIndex s = 10; s < 30; ++s) cfg.set(s, pt.sq_co);
  for (SiteIndex s = 30; s < 40; ++s) cfg.set(s, pt.sq_o);
  for (SiteIndex s = 40; s < 45; ++s) cfg.set(s, pt.sq_vac);
  EXPECT_DOUBLE_EQ(pt.co_coverage(cfg), 0.30);
  EXPECT_DOUBLE_EQ(pt.o_coverage(cfg), 0.10);
  EXPECT_DOUBLE_EQ(pt.sq_fraction(cfg), 0.35);
}

TEST(Pt100Model, DefaultParametersOscillate) {
  // The Fig 8-10 workload requirement: coverage oscillations on the default
  // parameter set. Moderate lattice to keep the test fast.
  const Pt100Model pt = make_pt100();
  RsmSimulator sim(pt.model, Configuration(Lattice(64, 64), 5, pt.hex_vac), 11);
  CoverageRecorder rec;
  run_sampled(sim, 150.0, 0.5, rec);
  const TimeSeries co = rec.combined({pt.hex_co, pt.sq_co});
  const auto osc = stats::detect_oscillations(co, 30.0);
  EXPECT_TRUE(osc.oscillating(3, 0.05))
      << "peaks=" << osc.num_peaks << " amp=" << osc.mean_amplitude;
  EXPECT_GT(osc.mean_period, 5.0);
  EXPECT_LT(osc.mean_period, 60.0);
}

TEST(Pt100Model, LocalModeBuildsWithoutFrontTypes) {
  Pt100Params p;
  p.front_propagation = false;
  const Pt100Model pt = make_pt100(p);
  for (ReactionIndex i = 0; i < pt.model.num_reactions(); ++i) {
    EXPECT_FALSE(pt.model.reaction(i).name().starts_with("lift_front"));
  }
  EXPECT_NO_THROW(pt.model.validate());
}

}  // namespace
}  // namespace casurf::models
