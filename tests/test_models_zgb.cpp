#include "models/zgb.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dmc/rsm.hpp"

namespace casurf::models {
namespace {

TEST(ZgbModel, TableIHasSevenReactionTypes) {
  const ZgbModel zgb = make_zgb();
  EXPECT_EQ(zgb.model.num_reactions(), 7u);
  EXPECT_EQ(zgb.model.reaction(0).name(), "CO_ads");
  EXPECT_EQ(zgb.model.reaction(1).name(), "O2_ads_0");
  EXPECT_EQ(zgb.model.reaction(2).name(), "O2_ads_1");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(zgb.model.reaction(3 + i).name(), "CO2_form_" + std::to_string(i));
  }
}

TEST(ZgbModel, SpeciesDomainMatchesPaper) {
  const ZgbModel zgb = make_zgb();
  EXPECT_EQ(zgb.model.species().size(), 3u);
  EXPECT_EQ(zgb.model.species().name(zgb.vacant), "*");
  EXPECT_EQ(zgb.model.species().name(zgb.co), "CO");
  EXPECT_EQ(zgb.model.species().name(zgb.o), "O");
}

TEST(ZgbModel, ChannelRatesDistributedOverOrientations) {
  const ZgbModel zgb = make_zgb(ZgbParams{2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(zgb.model.reaction(0).rate(), 2.0);
  EXPECT_DOUBLE_EQ(zgb.model.reaction(1).rate(), 1.5);  // k_o2 / 2
  EXPECT_DOUBLE_EQ(zgb.model.reaction(2).rate(), 1.5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(zgb.model.reaction(3 + i).rate(), 1.0);  // k_rea / 4
  }
  EXPECT_DOUBLE_EQ(zgb.model.total_rate(), 2.0 + 3.0 + 4.0);
}

TEST(ZgbModel, TableITransformationsExact) {
  const ZgbModel zgb = make_zgb();
  // Rt_CO at s: {(s, *, CO)}.
  const auto& co_ads = zgb.model.reaction(0).transforms();
  ASSERT_EQ(co_ads.size(), 1u);
  EXPECT_EQ(co_ads[0], exact({0, 0}, zgb.vacant, zgb.co));
  // Rt_O2 version 0: {(s, *, O), (s+(1,0), *, O)}.
  const auto& o2 = zgb.model.reaction(1).transforms();
  ASSERT_EQ(o2.size(), 2u);
  EXPECT_EQ(o2[0], exact({0, 0}, zgb.vacant, zgb.o));
  EXPECT_EQ(o2[1], exact({1, 0}, zgb.vacant, zgb.o));
  // Rt_CO+O version 2: {(s, CO, *), (s+(-1,0), O, *)}.
  const auto& rea = zgb.model.reaction(5).transforms();
  ASSERT_EQ(rea.size(), 2u);
  EXPECT_EQ(rea[0], exact({0, 0}, zgb.co, zgb.vacant));
  EXPECT_EQ(rea[1], exact({-1, 0}, zgb.o, zgb.vacant));
}

TEST(ZgbModel, FourReactionOrientationsCoverAllDirections) {
  const ZgbModel zgb = make_zgb();
  std::set<Vec2> dirs;
  for (int i = 3; i < 7; ++i) {
    dirs.insert(zgb.model.reaction(i).transforms()[1].offset);
  }
  EXPECT_EQ(dirs, (std::set<Vec2>{{1, 0}, {0, 1}, {-1, 0}, {0, -1}}));
}

TEST(ZgbModel, FromYParameterization) {
  const ZgbModel zgb = make_zgb(ZgbParams::from_y(0.3, 10.0));
  EXPECT_DOUBLE_EQ(zgb.model.reaction(0).rate(), 0.3);
  EXPECT_DOUBLE_EQ(zgb.model.reaction(1).rate() + zgb.model.reaction(2).rate(), 0.7);
}

TEST(ZgbModel, RejectsNonPositiveRates) {
  EXPECT_THROW((void)make_zgb(ZgbParams{0.0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)make_zgb(ZgbParams{1.0, -1.0, 1.0}), std::invalid_argument);
}

TEST(ZgbModel, MassBalanceUnderSimulation) {
  // CO on surface = CO adsorbed - CO2 formed; O = 2 * O2 events - CO2.
  const ZgbModel zgb = make_zgb(ZgbParams::from_y(0.45, 10.0));
  RsmSimulator sim(zgb.model, Configuration(Lattice(24, 24), 3, zgb.vacant), 7);
  for (int i = 0; i < 200; ++i) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  const std::uint64_t co_ads = per[0];
  const std::uint64_t o2_ads = per[1] + per[2];
  std::uint64_t co2 = 0;
  for (int i = 3; i < 7; ++i) co2 += per[i];
  EXPECT_EQ(sim.configuration().count(zgb.co), co_ads - co2);
  EXPECT_EQ(sim.configuration().count(zgb.o), 2 * o2_ads - co2);
}

TEST(ZgbModel, OxygenAdsorbedInAdjacentPairs) {
  // From an empty lattice with only O2 adsorption enabled (k_co tiny),
  // every O2 event writes exactly two adjacent O.
  const ZgbModel zgb = make_zgb(ZgbParams{1e-9, 1.0, 1e-9});
  RsmSimulator sim(zgb.model, Configuration(Lattice(16, 16), 3, zgb.vacant), 8);
  for (int i = 0; i < 5; ++i) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  EXPECT_EQ(sim.configuration().count(zgb.o), 2 * (per[1] + per[2]));
}

}  // namespace
}  // namespace casurf::models
