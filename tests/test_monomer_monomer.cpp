#include "models/monomer_monomer.hpp"

#include <gtest/gtest.h>

#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"
#include "partition/coloring.hpp"
#include "stats/correlations.hpp"

namespace casurf::models {
namespace {

TEST(MonomerMonomer, SixReactionTypes) {
  const auto mm = make_monomer_monomer();
  EXPECT_EQ(mm.model.num_reactions(), 6u);
  EXPECT_DOUBLE_EQ(mm.model.total_rate(), 0.5 + 0.5 + 2.0);
  EXPECT_NO_THROW(mm.model.validate());
}

TEST(MonomerMonomer, RejectsBadRates) {
  EXPECT_THROW((void)make_monomer_monomer({0.0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)make_monomer_monomer({1.0, 1.0, -2.0}), std::invalid_argument);
}

TEST(MonomerMonomer, FiveChunkPartitionWorks) {
  // Same von Neumann pair patterns as ZGB: the optimal partition is the
  // same five-chunk coloring.
  const auto mm = make_monomer_monomer();
  const Partition p = make_partition(Lattice(20, 20), mm.model);
  EXPECT_EQ(p.num_chunks(), 5u);
  EXPECT_TRUE(verify_partition(p, conflict_offsets(mm.model)));
}

TEST(MonomerMonomer, AsymmetryPoisonsWithMajoritySpecies) {
  const auto mm = make_monomer_monomer({0.8, 0.2, 2.0});
  RsmSimulator sim(mm.model, Configuration(Lattice(16, 16), 3, mm.vacant), 1);
  sim.advance_to(200.0);
  EXPECT_GT(sim.configuration().coverage(mm.a), 0.95);
}

TEST(MonomerMonomer, MassBalance) {
  const auto mm = make_monomer_monomer();
  RsmSimulator sim(mm.model, Configuration(Lattice(20, 20), 3, mm.vacant), 2);
  for (int i = 0; i < 200; ++i) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  std::uint64_t rea = 0;
  for (int i = 2; i < 6; ++i) rea += per[i];
  EXPECT_EQ(sim.configuration().count(mm.a), per[0] - rea);
  EXPECT_EQ(sim.configuration().count(mm.b), per[1] - rea);
}

TEST(MonomerMonomer, SymmetricCaseSegregates) {
  // The hallmark of the MM model: adjacent A-B pairs annihilate, so the
  // survivors organize into same-species domains — the A-B pair
  // correlation falls well below random mixing and keeps falling.
  const auto mm = make_monomer_monomer({0.5, 0.5, 4.0});
  VssmSimulator sim(mm.model, Configuration(Lattice(48, 48), 3, mm.vacant), 3);
  sim.advance_to(5.0);
  const double g_early = stats::pair_correlation(sim.configuration(), mm.a, mm.b);
  sim.advance_to(60.0);
  const double g_late = stats::pair_correlation(sim.configuration(), mm.a, mm.b);
  EXPECT_LT(g_early, 0.8);   // already depleted vs random mixing
  EXPECT_LT(g_late, g_early);  // coarsening continues
  // Same-species clustering exceeds random.
  EXPECT_GT(stats::pair_correlation(sim.configuration(), mm.a, mm.a), 1.2);
}

TEST(MonomerMonomer, AxialCorrelationDecaysWithDistance) {
  const auto mm = make_monomer_monomer({0.5, 0.5, 4.0});
  VssmSimulator sim(mm.model, Configuration(Lattice(48, 48), 3, mm.vacant), 4);
  sim.advance_to(40.0);
  const double c1 = stats::axial_correlation(sim.configuration(), mm.a, 1);
  const double c8 = stats::axial_correlation(sim.configuration(), mm.a, 8);
  EXPECT_GT(c1, 0.15);  // clear short-range clustering
  EXPECT_LT(c8, c1);   // decays with distance
}

}  // namespace
}  // namespace casurf::models
