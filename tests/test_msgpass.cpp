#include "parallel/msgpass.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace casurf {
namespace {

TEST(MsgPass, SingleRankRuns) {
  std::atomic<int> ran{0};
  Communicator::run(1, [&](Communicator::Rank& rank) {
    EXPECT_EQ(rank.rank(), 0);
    EXPECT_EQ(rank.world_size(), 1);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(MsgPass, AllRanksGetDistinctIds) {
  std::vector<std::atomic<int>> seen(4);
  Communicator::run(4, [&](Communicator::Rank& rank) {
    seen[rank.rank()].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(MsgPass, PointToPointRoundTrip) {
  Communicator::run(2, [](Communicator::Rank& rank) {
    if (rank.rank() == 0) {
      rank.send_value<int>(1, 7, 12345);
      EXPECT_EQ(rank.recv_value<int>(1, 8), 54321);
    } else {
      EXPECT_EQ(rank.recv_value<int>(0, 7), 12345);
      rank.send_value<int>(0, 8, 54321);
    }
  });
}

TEST(MsgPass, TagsKeepStreamsSeparate) {
  Communicator::run(2, [](Communicator::Rank& rank) {
    if (rank.rank() == 0) {
      rank.send_value<int>(1, 1, 100);
      rank.send_value<int>(1, 2, 200);
    } else {
      // Receive in the opposite order of sending: tag matching must find
      // the right message regardless of queue position.
      EXPECT_EQ(rank.recv_value<int>(0, 2), 200);
      EXPECT_EQ(rank.recv_value<int>(0, 1), 100);
    }
  });
}

TEST(MsgPass, FifoPerSourceAndTag) {
  Communicator::run(2, [](Communicator::Rank& rank) {
    if (rank.rank() == 0) {
      for (int i = 0; i < 20; ++i) rank.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < 20; ++i) EXPECT_EQ(rank.recv_value<int>(0, 3), i);
    }
  });
}

TEST(MsgPass, SpanTransfer) {
  Communicator::run(2, [](Communicator::Rank& rank) {
    if (rank.rank() == 0) {
      std::vector<double> data(64);
      std::iota(data.begin(), data.end(), 0.0);
      rank.send_span(1, 4, data.data(), data.size());
    } else {
      std::vector<double> got(64, -1);
      rank.recv_span(0, 4, got.data(), got.size());
      for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(got[i], i);
    }
  });
}

TEST(MsgPass, BarrierSynchronizes) {
  // Phase counter: after the barrier, every rank must observe every other
  // rank's pre-barrier increment.
  std::atomic<int> before{0};
  std::vector<int> observed(4, -1);
  Communicator::run(4, [&](Communicator::Rank& rank) {
    before.fetch_add(1);
    rank.barrier();
    observed[rank.rank()] = before.load();
  });
  for (const int o : observed) EXPECT_EQ(o, 4);
}

TEST(MsgPass, RepeatedBarriers) {
  std::atomic<int> counter{0};
  Communicator::run(3, [&](Communicator::Rank& rank) {
    for (int round = 0; round < 50; ++round) {
      counter.fetch_add(1);
      rank.barrier();
      EXPECT_EQ(counter.load() % 3, 0);
      rank.barrier();
    }
  });
}

TEST(MsgPass, AllreduceSumDouble) {
  Communicator::run(4, [](Communicator::Rank& rank) {
    const double mine = static_cast<double>(rank.rank() + 1);
    EXPECT_DOUBLE_EQ(rank.allreduce_sum(mine), 10.0);  // 1+2+3+4
  });
}

TEST(MsgPass, AllreduceSumU64Repeated) {
  Communicator::run(3, [](Communicator::Rank& rank) {
    for (std::uint64_t round = 1; round <= 30; ++round) {
      const std::uint64_t total =
          rank.allreduce_sum(static_cast<std::uint64_t>(rank.rank()) + round);
      EXPECT_EQ(total, 3 * round + 3);  // (0+1+2) + 3*round
    }
  });
}

TEST(MsgPass, StatsCountMessagesAndBytes) {
  const Communicator::Stats stats =
      Communicator::run(2, [](Communicator::Rank& rank) {
        if (rank.rank() == 0) {
          rank.send_value<std::uint32_t>(1, 1, 7);
        } else {
          (void)rank.recv_value<std::uint32_t>(0, 1);
        }
        rank.barrier();
      });
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, 4u);
  EXPECT_GE(stats.barriers, 1u);
}

TEST(MsgPass, ConcurrentRunsKeepStatsSeparate) {
  // Two worlds with different traffic shapes driven from separate threads.
  // Each run() must report exactly its own totals — the regression this
  // guards is the old process-wide mutable static, where whichever world
  // finished last overwrote the other's stats (and the write itself raced).
  constexpr int kRounds = 50;
  const auto world = [](int messages, std::size_t payload) {
    return Communicator::run(2, [=](Communicator::Rank& rank) {
      const std::vector<std::byte> buf(payload);
      for (int i = 0; i < messages; ++i) {
        if (rank.rank() == 0) {
          rank.send(1, 1, buf);
        } else {
          (void)rank.recv(0, 1);
        }
      }
      rank.barrier();
    });
  };

  Communicator::Stats small{}, big{};
  std::thread a([&] { small = world(kRounds, 8); });
  std::thread b([&] { big = world(2 * kRounds, 64); });
  a.join();
  b.join();

  EXPECT_EQ(small.messages, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(small.bytes, static_cast<std::uint64_t>(kRounds) * 8);
  EXPECT_GE(small.barriers, 1u);
  EXPECT_EQ(big.messages, static_cast<std::uint64_t>(2 * kRounds));
  EXPECT_EQ(big.bytes, static_cast<std::uint64_t>(2 * kRounds) * 64);
  EXPECT_GE(big.barriers, 1u);
}

TEST(MsgPass, RankFailureWakesBlockedRecv) {
  // The deadlock this guards: rank 0 throws before sending, while rank 1
  // is parked in an unbounded recv wait. run() must abort the world, wake
  // rank 1 (which throws CommAborted), join both ranks, and rethrow the
  // ORIGINAL exception — not hang in join(), not surface the cascade.
  try {
    Communicator::run(2, [](Communicator::Rank& rank) {
      if (rank.rank() == 0) throw std::runtime_error("rank 0 died");
      (void)rank.recv(0, 1);  // blocks forever without the abort path
      FAIL() << "recv returned from a dead world";
    });
    FAIL() << "run() swallowed the rank failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0 died");
  }
}

TEST(MsgPass, RankFailureWakesBlockedBarrier) {
  try {
    Communicator::run(3, [](Communicator::Rank& rank) {
      if (rank.rank() == 2) throw std::runtime_error("rank 2 died");
      rank.barrier();  // never completed by rank 2
      FAIL() << "barrier completed in a dead world";
    });
    FAIL() << "run() swallowed the rank failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 2 died");
  }
}

TEST(MsgPass, RankFailureWakesBlockedAllreduce) {
  try {
    Communicator::run(2, [](Communicator::Rank& rank) {
      if (rank.rank() == 0) throw std::runtime_error("rank 0 died");
      (void)rank.allreduce_sum(1.0);
      FAIL() << "allreduce completed in a dead world";
    });
    FAIL() << "run() swallowed the rank failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0 died");
  }
}

TEST(MsgPass, CallsAfterAbortThrowCommAborted) {
  // A rank entering a blocking call after the world aborted must get
  // CommAborted immediately (poisoned mailboxes), not wait. The survivor
  // records what it saw and swallows it, so the only error run() reports
  // is the original failure.
  std::atomic<bool> survivor_saw_abort{false};
  try {
    Communicator::run(2, [&](Communicator::Rank& rank) {
      if (rank.rank() == 0) throw std::runtime_error("rank 0 died");
      try {
        // Eventually observes the poisoned state, no matter how the
        // scheduler interleaves this with rank 0's failure.
        for (;;) (void)rank.recv(0, 1);
      } catch (const CommAborted&) {
        survivor_saw_abort.store(true);
      }
    });
    FAIL() << "run() swallowed the rank failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0 died");
  }
  EXPECT_TRUE(survivor_saw_abort.load());
}

TEST(MsgPass, AbortedWorldStillRethrowsWhenOnlyCommAbortedRemains) {
  // A rank_main that itself throws CommAborted (user code) must still
  // surface: the cascade filter only prefers non-CommAborted errors.
  EXPECT_THROW(
      Communicator::run(1, [](Communicator::Rank&) { throw CommAborted(); }),
      CommAborted);
}

TEST(MsgPass, ExceptionInRankPropagates) {
  EXPECT_THROW(Communicator::run(2,
                                 [](Communicator::Rank& rank) {
                                   rank.barrier();
                                   if (rank.rank() == 1) {
                                     throw std::runtime_error("rank failure");
                                   }
                                 }),
               std::runtime_error);
}

TEST(MsgPass, InvalidDestinationThrowsInRank) {
  EXPECT_THROW(Communicator::run(1,
                                 [](Communicator::Rank& rank) {
                                   rank.send_value<int>(5, 0, 1);
                                 }),
               std::out_of_range);
}

TEST(MsgPass, InvalidWorldSize) {
  EXPECT_THROW(Communicator::run(0, [](Communicator::Rank&) {}), std::invalid_argument);
}

}  // namespace
}  // namespace casurf
