#include "parallel/msgpass.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace casurf {
namespace {

TEST(MsgPass, SingleRankRuns) {
  std::atomic<int> ran{0};
  Communicator::run(1, [&](Communicator::Rank& rank) {
    EXPECT_EQ(rank.rank(), 0);
    EXPECT_EQ(rank.world_size(), 1);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(MsgPass, AllRanksGetDistinctIds) {
  std::vector<std::atomic<int>> seen(4);
  Communicator::run(4, [&](Communicator::Rank& rank) {
    seen[rank.rank()].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(MsgPass, PointToPointRoundTrip) {
  Communicator::run(2, [](Communicator::Rank& rank) {
    if (rank.rank() == 0) {
      rank.send_value<int>(1, 7, 12345);
      EXPECT_EQ(rank.recv_value<int>(1, 8), 54321);
    } else {
      EXPECT_EQ(rank.recv_value<int>(0, 7), 12345);
      rank.send_value<int>(0, 8, 54321);
    }
  });
}

TEST(MsgPass, TagsKeepStreamsSeparate) {
  Communicator::run(2, [](Communicator::Rank& rank) {
    if (rank.rank() == 0) {
      rank.send_value<int>(1, 1, 100);
      rank.send_value<int>(1, 2, 200);
    } else {
      // Receive in the opposite order of sending: tag matching must find
      // the right message regardless of queue position.
      EXPECT_EQ(rank.recv_value<int>(0, 2), 200);
      EXPECT_EQ(rank.recv_value<int>(0, 1), 100);
    }
  });
}

TEST(MsgPass, FifoPerSourceAndTag) {
  Communicator::run(2, [](Communicator::Rank& rank) {
    if (rank.rank() == 0) {
      for (int i = 0; i < 20; ++i) rank.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < 20; ++i) EXPECT_EQ(rank.recv_value<int>(0, 3), i);
    }
  });
}

TEST(MsgPass, SpanTransfer) {
  Communicator::run(2, [](Communicator::Rank& rank) {
    if (rank.rank() == 0) {
      std::vector<double> data(64);
      std::iota(data.begin(), data.end(), 0.0);
      rank.send_span(1, 4, data.data(), data.size());
    } else {
      std::vector<double> got(64, -1);
      rank.recv_span(0, 4, got.data(), got.size());
      for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(got[i], i);
    }
  });
}

TEST(MsgPass, BarrierSynchronizes) {
  // Phase counter: after the barrier, every rank must observe every other
  // rank's pre-barrier increment.
  std::atomic<int> before{0};
  std::vector<int> observed(4, -1);
  Communicator::run(4, [&](Communicator::Rank& rank) {
    before.fetch_add(1);
    rank.barrier();
    observed[rank.rank()] = before.load();
  });
  for (const int o : observed) EXPECT_EQ(o, 4);
}

TEST(MsgPass, RepeatedBarriers) {
  std::atomic<int> counter{0};
  Communicator::run(3, [&](Communicator::Rank& rank) {
    for (int round = 0; round < 50; ++round) {
      counter.fetch_add(1);
      rank.barrier();
      EXPECT_EQ(counter.load() % 3, 0);
      rank.barrier();
    }
  });
}

TEST(MsgPass, AllreduceSumDouble) {
  Communicator::run(4, [](Communicator::Rank& rank) {
    const double mine = static_cast<double>(rank.rank() + 1);
    EXPECT_DOUBLE_EQ(rank.allreduce_sum(mine), 10.0);  // 1+2+3+4
  });
}

TEST(MsgPass, AllreduceSumU64Repeated) {
  Communicator::run(3, [](Communicator::Rank& rank) {
    for (std::uint64_t round = 1; round <= 30; ++round) {
      const std::uint64_t total =
          rank.allreduce_sum(static_cast<std::uint64_t>(rank.rank()) + round);
      EXPECT_EQ(total, 3 * round + 3);  // (0+1+2) + 3*round
    }
  });
}

TEST(MsgPass, StatsCountMessagesAndBytes) {
  const Communicator::Stats stats =
      Communicator::run(2, [](Communicator::Rank& rank) {
        if (rank.rank() == 0) {
          rank.send_value<std::uint32_t>(1, 1, 7);
        } else {
          (void)rank.recv_value<std::uint32_t>(0, 1);
        }
        rank.barrier();
      });
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, 4u);
  EXPECT_GE(stats.barriers, 1u);
}

TEST(MsgPass, ConcurrentRunsKeepStatsSeparate) {
  // Two worlds with different traffic shapes driven from separate threads.
  // Each run() must report exactly its own totals — the regression this
  // guards is the old process-wide mutable static, where whichever world
  // finished last overwrote the other's stats (and the write itself raced).
  constexpr int kRounds = 50;
  const auto world = [](int messages, std::size_t payload) {
    return Communicator::run(2, [=](Communicator::Rank& rank) {
      const std::vector<std::byte> buf(payload);
      for (int i = 0; i < messages; ++i) {
        if (rank.rank() == 0) {
          rank.send(1, 1, buf);
        } else {
          (void)rank.recv(0, 1);
        }
      }
      rank.barrier();
    });
  };

  Communicator::Stats small{}, big{};
  std::thread a([&] { small = world(kRounds, 8); });
  std::thread b([&] { big = world(2 * kRounds, 64); });
  a.join();
  b.join();

  EXPECT_EQ(small.messages, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(small.bytes, static_cast<std::uint64_t>(kRounds) * 8);
  EXPECT_GE(small.barriers, 1u);
  EXPECT_EQ(big.messages, static_cast<std::uint64_t>(2 * kRounds));
  EXPECT_EQ(big.bytes, static_cast<std::uint64_t>(2 * kRounds) * 64);
  EXPECT_GE(big.barriers, 1u);
}

TEST(MsgPass, RankFailureWakesBlockedRecv) {
  // The deadlock this guards: rank 0 throws before sending, while rank 1
  // is parked in an unbounded recv wait. run() must abort the world, wake
  // rank 1 (which throws CommAborted), join both ranks, and rethrow the
  // ORIGINAL exception — not hang in join(), not surface the cascade.
  try {
    Communicator::run(2, [](Communicator::Rank& rank) {
      if (rank.rank() == 0) throw std::runtime_error("rank 0 died");
      (void)rank.recv(0, 1);  // blocks forever without the abort path
      FAIL() << "recv returned from a dead world";
    });
    FAIL() << "run() swallowed the rank failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0 died");
  }
}

TEST(MsgPass, RankFailureWakesBlockedBarrier) {
  try {
    Communicator::run(3, [](Communicator::Rank& rank) {
      if (rank.rank() == 2) throw std::runtime_error("rank 2 died");
      rank.barrier();  // never completed by rank 2
      FAIL() << "barrier completed in a dead world";
    });
    FAIL() << "run() swallowed the rank failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 2 died");
  }
}

TEST(MsgPass, RankFailureWakesBlockedAllreduce) {
  try {
    Communicator::run(2, [](Communicator::Rank& rank) {
      if (rank.rank() == 0) throw std::runtime_error("rank 0 died");
      (void)rank.allreduce_sum(1.0);
      FAIL() << "allreduce completed in a dead world";
    });
    FAIL() << "run() swallowed the rank failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0 died");
  }
}

TEST(MsgPass, CallsAfterAbortThrowCommAborted) {
  // A rank entering a blocking call after the world aborted must get
  // CommAborted immediately (poisoned mailboxes), not wait. The survivor
  // records what it saw and swallows it, so the only error run() reports
  // is the original failure.
  std::atomic<bool> survivor_saw_abort{false};
  try {
    Communicator::run(2, [&](Communicator::Rank& rank) {
      if (rank.rank() == 0) throw std::runtime_error("rank 0 died");
      try {
        // Eventually observes the poisoned state, no matter how the
        // scheduler interleaves this with rank 0's failure.
        for (;;) (void)rank.recv(0, 1);
      } catch (const CommAborted&) {
        survivor_saw_abort.store(true);
      }
    });
    FAIL() << "run() swallowed the rank failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0 died");
  }
  EXPECT_TRUE(survivor_saw_abort.load());
}

TEST(MsgPass, AbortedWorldStillRethrowsWhenOnlyCommAbortedRemains) {
  // A rank_main that itself throws CommAborted (user code) must still
  // surface: the cascade filter only prefers non-CommAborted errors.
  EXPECT_THROW(
      Communicator::run(1, [](Communicator::Rank&) { throw CommAborted(); }),
      CommAborted);
}

TEST(MsgPass, ExceptionInRankPropagates) {
  EXPECT_THROW(Communicator::run(2,
                                 [](Communicator::Rank& rank) {
                                   rank.barrier();
                                   if (rank.rank() == 1) {
                                     throw std::runtime_error("rank failure");
                                   }
                                 }),
               std::runtime_error);
}

TEST(MsgPass, InvalidDestinationThrowsInRank) {
  EXPECT_THROW(Communicator::run(1,
                                 [](Communicator::Rank& rank) {
                                   rank.send_value<int>(5, 0, 1);
                                 }),
               std::out_of_range);
}

TEST(MsgPass, InvalidWorldSize) {
  EXPECT_THROW(Communicator::run(0, [](Communicator::Rank&) {}), std::invalid_argument);
}

TEST(MsgPass, RecvSpanSizeMismatchThrows) {
  // The silent-truncation regression: a sender shipping 3 doubles to a
  // receiver expecting 4 used to memcpy whatever arrived and leave the
  // tail stale. It must be a descriptive error instead.
  try {
    Communicator::run(2, [](Communicator::Rank& rank) {
      if (rank.rank() == 0) {
        const std::vector<double> data(3, 1.5);
        rank.send_span(1, 9, data.data(), data.size());
      } else {
        std::vector<double> got(4, -1.0);
        rank.recv_span(0, 9, got.data(), got.size());
        FAIL() << "recv_span accepted a short payload";
      }
    });
    FAIL() << "run() swallowed the payload mismatch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("payload size mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("got 24 bytes, expected 32"), std::string::npos) << what;
  }
}

TEST(MsgPass, RecvValueSizeMismatchThrows) {
  try {
    Communicator::run(2, [](Communicator::Rank& rank) {
      if (rank.rank() == 0) {
        rank.send_value<std::uint16_t>(1, 3, 7);
      } else {
        (void)rank.recv_value<std::uint64_t>(0, 3);
        FAIL() << "recv_value accepted a short payload";
      }
    });
    FAIL() << "run() swallowed the payload mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("payload size mismatch"),
              std::string::npos)
        << e.what();
  }
}

#ifndef CASURF_NO_METRICS

/// Total of the registry's comm/edge counters matching `suffix`
/// ("messages" or "bytes"); also verifies the src->dst name shape.
std::uint64_t edge_total(const obs::MetricsRegistry& registry,
                         const std::string& suffix) {
  std::uint64_t total = 0;
  for (const auto& c : registry.counters()) {
    int src = -1, dst = -1;
    char kind[16] = {};
    if (std::sscanf(c.name.c_str(), "comm/edge/%d->%d/%15s", &src, &dst,
                    kind) == 3 &&
        suffix == kind) {
      total += c.value;
    }
  }
  return total;
}

TEST(MsgPassObs, EdgeCountersReconcileWithStats) {
  // Asymmetric traffic so per-edge attribution is distinguishable from a
  // single global counter: 0->1 three small messages, 1->2 one large, plus
  // barriers and an allreduce. Every edge counter must sum back to the
  // communicator's own Stats — the reconciliation casurf_report --comm
  // enforces on real runs.
  obs::MetricsRegistry registry;
  const Communicator::Stats stats = Communicator::run(
      3,
      [](Communicator::Rank& rank) {
        if (rank.rank() == 0) {
          for (int i = 0; i < 3; ++i) rank.send_value<std::uint32_t>(1, 1, i);
        } else if (rank.rank() == 1) {
          for (int i = 0; i < 3; ++i) (void)rank.recv_value<std::uint32_t>(0, 1);
          const std::vector<double> big(32, 1.0);
          rank.send_span(2, 2, big.data(), big.size());
        } else {
          std::vector<double> got(32, 0.0);
          rank.recv_span(1, 2, got.data(), got.size());
        }
        rank.barrier();
        (void)rank.allreduce_sum(1.0);
      },
      CommObs{&registry, nullptr});

  EXPECT_EQ(stats.messages, 4u);
  EXPECT_EQ(stats.bytes, 3u * 4 + 32 * 8);
  EXPECT_EQ(edge_total(registry, "messages"), stats.messages);
  EXPECT_EQ(edge_total(registry, "bytes"), stats.bytes);

  // The specific edges, not just the totals.
  std::uint64_t edge01 = 0, edge12 = 0;
  for (const auto& c : registry.counters()) {
    if (c.name == "comm/edge/0->1/messages") edge01 = c.value;
    if (c.name == "comm/edge/1->2/messages") edge12 = c.value;
  }
  EXPECT_EQ(edge01, 3u);
  EXPECT_EQ(edge12, 1u);

  // Wait timers and the barrier-skew histogram exist per rank.
  std::size_t recv_timers = 0, barrier_timers = 0;
  for (const auto& t : registry.timers()) {
    if (t.name.starts_with("comm/wait/recv/rank")) ++recv_timers;
    if (t.name.starts_with("comm/wait/barrier/rank")) ++barrier_timers;
  }
  EXPECT_EQ(recv_timers, 3u);
  EXPECT_EQ(barrier_timers, 3u);
  bool skew_seen = false;
  for (const auto& h : registry.histograms()) {
    if (h.name == "comm/barrier_skew_ns") {
      skew_seen = true;
      EXPECT_GE(h.count, 1u);
    }
  }
  EXPECT_TRUE(skew_seen);
}

TEST(MsgPassObs, RankLanesCarryCommEvents) {
  obs::Tracer tracer;
  Communicator::run(
      2,
      [](Communicator::Rank& rank) {
        ASSERT_NE(rank.trace(), nullptr);
        if (rank.rank() == 0) {
          const std::vector<std::uint32_t> data(4, 9);
          rank.send_span(1, 5, data.data(), data.size());
        } else {
          std::vector<std::uint32_t> got(4, 0);
          rank.recv_span(0, 5, got.data(), got.size());
        }
        rank.barrier();
      },
      CommObs{nullptr, &tracer});

  // Rank k records onto lane kRankLaneBase + k — its own ring, single
  // writer, so lanes never interleave.
  const auto lane0 = tracer.ring(obs::kRankLaneBase + 0).events();
  const auto lane1 = tracer.ring(obs::kRankLaneBase + 1).events();
  bool send_seen = false;
  for (const auto& e : lane0) {
    if (std::strcmp(e.name, "comm/send") == 0) {
      send_seen = true;
      EXPECT_EQ(e.kind, obs::TraceEvent::Kind::kInstant);
      EXPECT_EQ(e.src, 0);
      EXPECT_EQ(e.dst, 1);
      EXPECT_EQ(e.tag, 5);
      EXPECT_EQ(e.bytes, 16u);
    }
  }
  EXPECT_TRUE(send_seen);
  bool recv_seen = false, barrier_seen = false;
  for (const auto& e : lane1) {
    if (std::strcmp(e.name, "comm/recv") == 0) {
      recv_seen = true;
      EXPECT_EQ(e.kind, obs::TraceEvent::Kind::kSpan);
      EXPECT_EQ(e.src, 0);
      EXPECT_EQ(e.dst, 1);
      EXPECT_EQ(e.tag, 5);
      EXPECT_EQ(e.bytes, 16u);
    }
    if (std::strcmp(e.name, "comm/barrier") == 0) barrier_seen = true;
  }
  EXPECT_TRUE(recv_seen);
  EXPECT_TRUE(barrier_seen);
}

TEST(MsgPassObs, ConcurrentWorldsIsolateProbes) {
  // Two instrumented worlds running simultaneously, each with its own
  // registry and tracer: probes are per-Communicator state (armed in
  // run()), so neither world may leak counts or trace events into the
  // other's sinks. Run under the TSan recipe this also proves the probe
  // paths add no races on top of the communicator's own locking.
  constexpr int kSmall = 10, kBig = 25;
  const auto world = [](int messages, obs::MetricsRegistry& registry,
                        obs::Tracer& tracer) {
    return Communicator::run(
        2,
        [messages](Communicator::Rank& rank) {
          for (int i = 0; i < messages; ++i) {
            if (rank.rank() == 0) {
              rank.send_value<std::uint64_t>(1, 1, i);
            } else {
              (void)rank.recv_value<std::uint64_t>(0, 1);
            }
          }
          rank.barrier();
        },
        CommObs{&registry, &tracer});
  };

  obs::MetricsRegistry reg_a, reg_b;
  obs::Tracer tr_a, tr_b;
  Communicator::Stats stats_a{}, stats_b{};
  std::thread a([&] { stats_a = world(kSmall, reg_a, tr_a); });
  std::thread b([&] { stats_b = world(kBig, reg_b, tr_b); });
  a.join();
  b.join();

  EXPECT_EQ(stats_a.messages, static_cast<std::uint64_t>(kSmall));
  EXPECT_EQ(stats_b.messages, static_cast<std::uint64_t>(kBig));
  EXPECT_EQ(edge_total(reg_a, "messages"), stats_a.messages);
  EXPECT_EQ(edge_total(reg_b, "messages"), stats_b.messages);
  EXPECT_EQ(edge_total(reg_a, "bytes"), stats_a.bytes);
  EXPECT_EQ(edge_total(reg_b, "bytes"), stats_b.bytes);

  // Each world's send instants live in its own tracer, count intact.
  const auto sends = [](obs::Tracer& t) {
    std::uint64_t n = 0;
    for (const auto& e : t.ring(obs::kRankLaneBase + 0).events()) {
      if (std::strcmp(e.name, "comm/send") == 0) ++n;
    }
    return n;
  };
  EXPECT_EQ(sends(tr_a), static_cast<std::uint64_t>(kSmall));
  EXPECT_EQ(sends(tr_b), static_cast<std::uint64_t>(kBig));
}

TEST(MsgPassObs, NullSinksRecordNothing) {
  // The null-probe-off contract: a CommObs with both sinks null must leave
  // probes disarmed — rank.trace() stays null and nothing is recorded.
  Communicator::run(
      2,
      [](Communicator::Rank& rank) {
        EXPECT_EQ(rank.trace(), nullptr);
        if (rank.rank() == 0) {
          rank.send_value<int>(1, 1, 42);
        } else {
          (void)rank.recv_value<int>(0, 1);
        }
      },
      CommObs{});
}

#else  // CASURF_NO_METRICS

TEST(MsgPassObs, ProbesCompileOutUnderNoMetrics) {
  // CommProbes is an empty no-op class on this build (static_assert in
  // msgpass.hpp): arming with live sinks must record nothing anywhere,
  // while the communicator's own Stats keep counting.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  const Communicator::Stats stats = Communicator::run(
      2,
      [](Communicator::Rank& rank) {
        EXPECT_EQ(rank.trace(), nullptr);
        if (rank.rank() == 0) {
          rank.send_value<int>(1, 1, 42);
        } else {
          (void)rank.recv_value<int>(0, 1);
        }
        rank.barrier();
      },
      CommObs{&registry, &tracer});
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_TRUE(registry.counters().empty());
  EXPECT_TRUE(registry.timers().empty());
  EXPECT_TRUE(registry.histograms().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

#endif  // CASURF_NO_METRICS

}  // namespace
}  // namespace casurf
