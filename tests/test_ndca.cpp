#include "ca/ndca.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "dmc/rsm.hpp"
#include "models/diffusion.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

TEST(Ndca, EverySiteVisitedOncePerStep) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  NdcaSimulator sim(m, Configuration(Lattice(7, 5), 2, 0), 1);
  sim.mc_step();
  EXPECT_EQ(sim.counters().trials, 35u);
  sim.mc_step();
  EXPECT_EQ(sim.counters().trials, 70u);
}

TEST(Ndca, SameSeedSameTrajectory) {
  const ReactionModel m = ads_des_model(1.0, 0.3);
  NdcaSimulator a(m, Configuration(Lattice(8, 8), 2, 0), 9);
  NdcaSimulator b(m, Configuration(Lattice(8, 8), 2, 0), 9);
  for (int i = 0; i < 30; ++i) {
    a.mc_step();
    b.mc_step();
  }
  EXPECT_EQ(a.configuration(), b.configuration());
}

TEST(Ndca, EquilibriumMatchesIndependentSites) {
  // For uncoupled sites, site-selection order cannot matter: NDCA must hit
  // the same equilibrium as the Master Equation.
  const double ka = 1.0, kd = 0.5;
  const ReactionModel m = ads_des_model(ka, kd);
  NdcaSimulator sim(m, Configuration(Lattice(32, 32), 2, 0), 10);
  sim.advance_to(30.0);
  double avg = 0;
  const int samples = 50;
  for (int i = 0; i < samples; ++i) {
    sim.mc_step();
    avg += sim.configuration().coverage(1);
  }
  avg /= samples;
  EXPECT_NEAR(avg, ka / (ka + kd), 0.02);
}

TEST(Ndca, RasterSweepBiasesSingleFileDiffusion) {
  // The paper's section 4 claim, made concrete: a raster sweep revisits the
  // destination of a rightward hop later in the same step but never the
  // destination of a leftward one, so the two hop channels — identical in
  // rate — execute at systematically different frequencies (at this
  // density, blocked right-cascades rebound left). RSM shows no asymmetry.
  auto sf = models::make_single_file(1.0);
  Configuration cfg(Lattice(64, 1), 2, sf.vacant);
  for (std::int32_t x = 0; x < 64; x += 2) cfg.set(Vec2{x, 0}, sf.particle);

  NdcaSimulator ndca(sf.model, cfg, 11, TimeMode::kStochastic, SweepOrder::kRaster);
  for (int i = 0; i < 3000; ++i) ndca.mc_step();
  const auto& nper = ndca.counters().executed_per_type;
  const double ndca_ratio = static_cast<double>(nper[0]) /
                            static_cast<double>(nper[1]);  // right / left

  RsmSimulator rsm(sf.model, cfg, 11);
  for (int i = 0; i < 3000; ++i) rsm.mc_step();
  const auto& rper = rsm.counters().executed_per_type;
  const double rsm_ratio = static_cast<double>(rper[0]) /
                           static_cast<double>(rper[1]);

  EXPECT_NEAR(rsm_ratio, 1.0, 0.05);
  EXPECT_GT(std::abs(ndca_ratio - 1.0), 0.15);  // systematic directional bias
}

TEST(Ndca, ShuffledSweepRemovesDirectionalBias) {
  auto sf = models::make_single_file(1.0);
  Configuration cfg(Lattice(64, 1), 2, sf.vacant);
  for (std::int32_t x = 0; x < 64; x += 2) cfg.set(Vec2{x, 0}, sf.particle);

  NdcaSimulator sim(sf.model, cfg, 12, TimeMode::kStochastic, SweepOrder::kShuffled);
  for (int i = 0; i < 3000; ++i) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  const double ratio = static_cast<double>(per[0]) / static_cast<double>(per[1]);
  EXPECT_NEAR(ratio, 1.0, 0.06);
}

TEST(Ndca, DeterministicTimePerStep) {
  const ReactionModel m = ads_des_model(3.0, 1.0);  // K = 4
  NdcaSimulator sim(m, Configuration(Lattice(10, 10), 2, 0), 13,
                    TimeMode::kDeterministic);
  sim.mc_step();
  EXPECT_NEAR(sim.time(), 0.25, 1e-12);  // N trials * 1/(N K) = 1/K
}

TEST(Ndca, NameIsNdca) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  NdcaSimulator sim(m, Configuration(Lattice(2, 2), 2, 0), 1);
  EXPECT_EQ(sim.name(), "NDCA");
}

}  // namespace
}  // namespace casurf
