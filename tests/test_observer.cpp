#include "core/observer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/simulator.hpp"
#include "models/diffusion.hpp"

namespace casurf {
namespace {

/// Lands exactly on every requested target: isolates the grid arithmetic of
/// run_sampled itself from any simulator overshoot.
class ExactAdvanceSim final : public Simulator {
 public:
  ExactAdvanceSim(const ReactionModel& model, Configuration config)
      : Simulator(model, std::move(config)) {}
  void mc_step() override { time_ += 1e-3; }
  void advance_to(double t) override {
    if (t > time_) time_ = t;
  }
  [[nodiscard]] std::string name() const override { return "exact-advance"; }
};

/// Overshoots every target by a coarse, irregular amount (an event-driven
/// method with sparse events does exactly this) and records the targets it
/// was asked to reach.
class CoarseJumpSim final : public Simulator {
 public:
  CoarseJumpSim(const ReactionModel& model, Configuration config)
      : Simulator(model, std::move(config)) {}
  void mc_step() override { time_ += 0.7; }
  void advance_to(double t) override {
    targets.push_back(t);
    if (t > time_) time_ = t + 0.7;  // overshoot well past several grid steps
  }
  [[nodiscard]] std::string name() const override { return "coarse-jump"; }

  std::vector<double> targets;
};

class TimeRecorder final : public Observer {
 public:
  void sample(const Simulator& sim) override { times.push_back(sim.time()); }
  std::vector<double> times;
};

class ObserverGrid : public ::testing::Test {
 protected:
  models::DiffusionModel diff = models::make_diffusion(1.0);
  Configuration config{Lattice(4, 4), 2, Species{0}};
};

TEST_F(ObserverGrid, SamplesLandExactlyOnIntegerIndexedGrid) {
  ExactAdvanceSim sim(diff.model, config);
  TimeRecorder rec;
  const double dt = 0.1;  // not representable: repeated addition would drift
  run_sampled(sim, 100.0, dt, rec);

  // k = 0 sample at the start, then one per grid point: t0 + k*dt <= t_end.
  ASSERT_EQ(rec.times.size(), 1001u);
  for (std::size_t k = 0; k < rec.times.size(); ++k) {
    // Bitwise equality with the index-computed grid — the regression this
    // guards is the accumulated `next += dt` grid, where rounding error
    // compounds over hundreds of samples until points shift visibly.
    EXPECT_EQ(rec.times[k], static_cast<double>(k) * dt) << "sample " << k;
  }
}

TEST_F(ObserverGrid, OvershootingAdvanceDoesNotShiftLaterTargets) {
  CoarseJumpSim sim(diff.model, config);
  TimeRecorder rec;
  const double dt = 0.25;
  run_sampled(sim, 50.0, dt, rec);

  // Every target requested of the simulator is an exact grid point, even
  // though the simulator lands ~0.7 past each one. The pre-fix behavior
  // derived the next target from the overshot current time, so the grid
  // drifted by the cumulative overshoot.
  ASSERT_EQ(sim.targets.size(), 200u);
  for (std::size_t i = 0; i < sim.targets.size(); ++i) {
    EXPECT_EQ(sim.targets[i], static_cast<double>(i + 1) * dt) << "target " << i;
  }
  // One sample per grid point (k = 0..200), regardless of the overshoot.
  EXPECT_EQ(rec.times.size(), 201u);
}

TEST_F(ObserverGrid, GridAnchorsAtStartTimeNotZero) {
  ExactAdvanceSim sim(diff.model, config);
  sim.advance_to(3.0);  // t0 = 3
  TimeRecorder rec;
  run_sampled(sim, 5.0, 0.5, rec);
  const std::vector<double> expected = {3.0, 3.5, 4.0, 4.5, 5.0};
  ASSERT_EQ(rec.times.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rec.times[i], expected[i]);
  }
}

TEST_F(ObserverGrid, RejectsNonPositiveDt) {
  ExactAdvanceSim sim(diff.model, config);
  TimeRecorder rec;
  EXPECT_THROW(run_sampled(sim, 1.0, 0.0, rec), std::invalid_argument);
  EXPECT_THROW(run_sampled(sim, 1.0, -0.5, rec), std::invalid_argument);
}

TEST_F(ObserverGrid, EndBeforeFirstGridPointSamplesOnlyStart) {
  ExactAdvanceSim sim(diff.model, config);
  TimeRecorder rec;
  run_sampled(sim, 0.05, 0.1, rec);
  ASSERT_EQ(rec.times.size(), 1u);
  EXPECT_EQ(rec.times[0], 0.0);
}

}  // namespace
}  // namespace casurf
