#include "stats/oscillation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rng/xoshiro.hpp"
#include "rng/distributions.hpp"

namespace casurf {
namespace {

using stats::OscillationSummary;
using stats::detect_oscillations;

TimeSeries sine(double period, double amplitude, double t_end, double dt,
                double noise = 0.0, std::uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  TimeSeries ts;
  for (double t = 0; t <= t_end; t += dt) {
    double v = 0.5 + amplitude * std::sin(2 * std::numbers::pi * t / period);
    if (noise > 0) v += noise * (uniform01(rng) - 0.5);
    ts.append(t, v);
  }
  return ts;
}

TEST(Oscillation, DetectsCleanSine) {
  const auto s = detect_oscillations(sine(20.0, 0.3, 200.0, 0.5));
  EXPECT_TRUE(s.oscillating());
  EXPECT_NEAR(s.mean_period, 20.0, 1.5);
  // Peak-to-trough of a sine with amplitude 0.3 is 0.6 (smoothing shaves a
  // little off).
  EXPECT_NEAR(s.mean_amplitude, 0.6, 0.1);
  EXPECT_GE(s.num_peaks, 8u);
}

TEST(Oscillation, DetectsNoisySine) {
  const auto s = detect_oscillations(sine(25.0, 0.25, 250.0, 0.5, 0.1, 7));
  EXPECT_TRUE(s.oscillating());
  EXPECT_NEAR(s.mean_period, 25.0, 3.0);
}

TEST(Oscillation, FlatSignalHasNoPeaks) {
  TimeSeries flat;
  for (double t = 0; t <= 100; t += 1.0) flat.append(t, 0.4);
  const auto s = detect_oscillations(flat);
  EXPECT_EQ(s.num_peaks, 0u);
  EXPECT_FALSE(s.oscillating());
}

TEST(Oscillation, PureNoiseRejectedByProminenceGate) {
  Xoshiro256 rng(3);
  TimeSeries noise;
  for (double t = 0; t <= 200; t += 0.5) {
    noise.append(t, 0.5 + 0.01 * (uniform01(rng) - 0.5));
  }
  const auto s = detect_oscillations(noise);
  EXPECT_FALSE(s.oscillating());
}

TEST(Oscillation, DampedSignalLosesOscillationVerdict) {
  TimeSeries damped;
  for (double t = 0; t <= 300; t += 0.5) {
    damped.append(t, 0.5 + 0.4 * std::exp(-t / 30.0) *
                           std::sin(2 * std::numbers::pi * t / 20.0));
  }
  const auto full = detect_oscillations(damped, 0.0);
  const auto tail = detect_oscillations(damped, 150.0);
  // Early transient oscillates; the tail has decayed below the gate.
  EXPECT_GE(full.num_peaks, 2u);
  EXPECT_FALSE(tail.oscillating());
}

TEST(Oscillation, TransientSkipAffectsResult) {
  // Constant for t < 100, sine afterwards.
  TimeSeries ts;
  for (double t = 0; t <= 300; t += 0.5) {
    ts.append(t, t < 100 ? 0.5
                         : 0.5 + 0.3 * std::sin(2 * std::numbers::pi * (t - 100) / 20.0));
  }
  const auto s = detect_oscillations(ts, 100.0);
  EXPECT_TRUE(s.oscillating());
  EXPECT_NEAR(s.mean_period, 20.0, 2.0);
}

TEST(Oscillation, TooShortSeriesIsSafe) {
  TimeSeries tiny({0.0, 1.0}, {0.0, 1.0});
  const auto s = detect_oscillations(tiny);
  EXPECT_EQ(s.num_peaks, 0u);
}

TEST(OscillationSummary, GatesAreConfigurable) {
  OscillationSummary s;
  s.num_peaks = 4;
  s.mean_amplitude = 0.04;
  EXPECT_FALSE(s.oscillating());            // default min amplitude 0.05
  EXPECT_TRUE(s.oscillating(3, 0.03));      // relaxed gate
  EXPECT_FALSE(s.oscillating(5, 0.03));     // stricter peak count
}

}  // namespace
}  // namespace casurf
