#include "parallel/parallel_pndca.hpp"

#include <gtest/gtest.h>

#include "models/pt100.hpp"
#include "models/zgb.hpp"
#include "partition/coloring.hpp"

namespace casurf {
namespace {

std::vector<Partition> five_chunks(const Lattice& lat) {
  return {Partition::linear_form(lat, 1, 3, 5)};
}

TEST(ParallelPndca, RejectsConflictingPartition) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  EXPECT_THROW(ParallelPndcaEngine(zgb.model, Configuration(lat, 3, zgb.vacant),
                                   {Partition::single_chunk(lat)}, 1, 2),
               std::invalid_argument);
  EXPECT_THROW(ParallelPndcaEngine(zgb.model, Configuration(lat, 3, zgb.vacant),
                                   {Partition::linear_form(lat, 1, 1, 2)}, 1, 2),
               std::invalid_argument);
}

class ThreadCountSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadCountSweep, TrajectoryIdenticalToSequentialPndca) {
  // The library's core determinism guarantee: the threaded engine replays
  // the sequential PNDCA trajectory exactly, for any worker count.
  const unsigned threads = GetParam();
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(20, 20);

  PndcaSimulator seq(zgb.model, Configuration(lat, 3, zgb.vacant), five_chunks(lat), 99);
  ParallelPndcaEngine par(zgb.model, Configuration(lat, 3, zgb.vacant), five_chunks(lat),
                          99, threads);

  for (int step = 0; step < 40; ++step) {
    seq.mc_step();
    par.mc_step();
    ASSERT_TRUE(seq.configuration() == par.configuration()) << "step " << step;
    ASSERT_DOUBLE_EQ(seq.time(), par.time()) << "step " << step;
  }
  EXPECT_EQ(seq.counters().executed, par.counters().executed);
  EXPECT_EQ(seq.counters().executed_per_type, par.counters().executed_per_type);
  EXPECT_EQ(seq.counters().trials, par.counters().trials);
  // Species counts merged from per-thread deltas must agree too.
  for (Species s = 0; s < 3; ++s) {
    EXPECT_EQ(seq.configuration().count(s), par.configuration().count(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountSweep, ::testing::Values(1u, 2u, 3u, 4u, 7u));

class RateWeightedThreadSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RateWeightedThreadSweep, TrajectoryIdenticalToSequentialPndca) {
  // Under kRateWeighted the schedule depends on the enabled-rate cache, so
  // this additionally pins down the barrier-merged cache maintenance: any
  // divergence in the counts shows up as a diverging chunk schedule.
  const unsigned threads = GetParam();
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(20, 20);

  PndcaSimulator seq(zgb.model, Configuration(lat, 3, zgb.vacant), five_chunks(lat), 57,
                     ChunkPolicy::kRateWeighted);
  ParallelPndcaEngine par(zgb.model, Configuration(lat, 3, zgb.vacant), five_chunks(lat),
                          57, threads, ChunkPolicy::kRateWeighted);

  for (int step = 0; step < 40; ++step) {
    seq.mc_step();
    par.mc_step();
    ASSERT_EQ(seq.last_schedule(), par.last_schedule()) << "step " << step;
    ASSERT_TRUE(seq.configuration() == par.configuration()) << "step " << step;
    ASSERT_DOUBLE_EQ(seq.time(), par.time()) << "step " << step;
  }
  EXPECT_EQ(seq.counters().executed, par.counters().executed);
  EXPECT_EQ(seq.counters().executed_per_type, par.counters().executed_per_type);
  EXPECT_EQ(seq.counters().trials, par.counters().trials);
}

TEST_P(RateWeightedThreadSweep, MoreThreadsThanChunkSites) {
  // 5x5 with the five-chunk linear form: every chunk holds 5 sites, fewer
  // than the 7-thread pool — the fork-join leaves workers idle and the
  // barrier replay must still reproduce the serial cache exactly.
  const unsigned threads = GetParam();
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(5, 5);

  PndcaSimulator seq(zgb.model, Configuration(lat, 3, zgb.vacant), five_chunks(lat), 61,
                     ChunkPolicy::kRateWeighted);
  ParallelPndcaEngine par(zgb.model, Configuration(lat, 3, zgb.vacant), five_chunks(lat),
                          61, threads, ChunkPolicy::kRateWeighted);

  for (int step = 0; step < 30; ++step) {
    seq.mc_step();
    par.mc_step();
    ASSERT_EQ(seq.last_schedule(), par.last_schedule()) << "step " << step;
    ASSERT_TRUE(seq.configuration() == par.configuration()) << "step " << step;
    ASSERT_DOUBLE_EQ(seq.time(), par.time()) << "step " << step;
  }
  EXPECT_EQ(seq.counters().executed, par.counters().executed);
}

INSTANTIATE_TEST_SUITE_P(Threads, RateWeightedThreadSweep,
                         ::testing::Values(1u, 2u, 4u, 7u));

TEST(ParallelPndca, DeterministicAcrossPolicies) {
  auto zgb = models::make_zgb();
  const Lattice lat(15, 15);
  for (const ChunkPolicy policy :
       {ChunkPolicy::kInOrder, ChunkPolicy::kRandomOrder,
        ChunkPolicy::kRandomWithReplacement, ChunkPolicy::kRateWeighted}) {
    PndcaSimulator seq(zgb.model, Configuration(lat, 3, zgb.vacant), five_chunks(lat),
                       7, policy);
    ParallelPndcaEngine par(zgb.model, Configuration(lat, 3, zgb.vacant),
                            five_chunks(lat), 7, 3, policy);
    for (int i = 0; i < 15; ++i) {
      seq.mc_step();
      par.mc_step();
    }
    EXPECT_TRUE(seq.configuration() == par.configuration())
        << "policy " << static_cast<int>(policy);
  }
}

TEST(ParallelPndca, WorksOnPt100Model) {
  auto pt = models::make_pt100();
  const Lattice lat(16, 16);
  const Partition p = make_partition(lat, pt.model);
  ParallelPndcaEngine par(pt.model, Configuration(lat, 5, pt.hex_vac), {p}, 5, 2);
  PndcaSimulator seq(pt.model, Configuration(lat, 5, pt.hex_vac), {p}, 5);
  for (int i = 0; i < 10; ++i) {
    seq.mc_step();
    par.mc_step();
  }
  EXPECT_TRUE(seq.configuration() == par.configuration());
}

TEST(ParallelPndca, CountsConsistentAfterLongRun) {
  auto zgb = models::make_zgb();
  const Lattice lat(20, 20);
  ParallelPndcaEngine par(zgb.model, Configuration(lat, 3, zgb.vacant), five_chunks(lat),
                          3, 4);
  for (int i = 0; i < 100; ++i) par.mc_step();
  // Maintained counts equal a raw recount.
  std::vector<std::uint64_t> recount(3, 0);
  for (SiteIndex s = 0; s < par.configuration().size(); ++s) {
    ++recount[par.configuration().get(s)];
  }
  for (Species s = 0; s < 3; ++s) {
    EXPECT_EQ(par.configuration().count(s), recount[s]);
  }
}

TEST(ParallelPndca, ReportsThreadsAndName) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  ParallelPndcaEngine par(zgb.model, Configuration(lat, 3, zgb.vacant), five_chunks(lat),
                          1, 3);
  EXPECT_EQ(par.num_threads(), 3u);
  EXPECT_EQ(par.name(), "PNDCA(threads)");
}

}  // namespace
}  // namespace casurf
