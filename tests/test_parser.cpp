#include "model/parser.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dmc/rsm.hpp"
#include "models/zgb.hpp"

namespace casurf {
namespace {

constexpr const char* kZgbText = R"(
# ZGB CO oxidation, paper Table I
species * CO O

reaction CO_ads rate=1.0
  (0,0) * -> CO
end

reaction O2_ads rate=0.5 orientations=xy
  (0,0) * -> O
  (1,0) * -> O
end

reaction CO2_form rate=0.5 orientations=all
  (0,0) CO -> *
  (1,0) O -> *
end
)";

TEST(ModelParser, ParsesZgbText) {
  const ReactionModel model = parse_model(kZgbText);
  EXPECT_EQ(model.species().size(), 3u);
  EXPECT_EQ(model.num_reactions(), 7u);  // 1 + 2 + 4
  EXPECT_DOUBLE_EQ(model.total_rate(), 4.0);
}

TEST(ModelParser, ParsedZgbMatchesBuiltinStructure) {
  const ReactionModel parsed = parse_model(kZgbText);
  const auto builtin = models::make_zgb();
  ASSERT_EQ(parsed.num_reactions(), builtin.model.num_reactions());
  for (ReactionIndex i = 0; i < parsed.num_reactions(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.reaction(i).rate(), builtin.model.reaction(i).rate()) << i;
    EXPECT_EQ(parsed.reaction(i).transforms().size(),
              builtin.model.reaction(i).transforms().size()) << i;
  }
  // Orientation rotation: CO2_form_0 is +x, _1 is +y, _2 is -x, _3 is -y.
  EXPECT_EQ(parsed.reaction(3).transforms()[1].offset, (Vec2{1, 0}));
  EXPECT_EQ(parsed.reaction(4).transforms()[1].offset, (Vec2{0, 1}));
  EXPECT_EQ(parsed.reaction(5).transforms()[1].offset, (Vec2{-1, 0}));
  EXPECT_EQ(parsed.reaction(6).transforms()[1].offset, (Vec2{0, -1}));
}

TEST(ModelParser, ParsedModelSimulatesLikeBuiltin) {
  const ReactionModel parsed = parse_model(kZgbText);
  const auto builtin = models::make_zgb();
  RsmSimulator a(parsed, Configuration(Lattice(16, 16), 3, 0), 7);
  RsmSimulator b(builtin.model, Configuration(Lattice(16, 16), 3, 0), 7);
  for (int i = 0; i < 30; ++i) {
    a.mc_step();
    b.mc_step();
  }
  // Same seed, structurally identical models: identical trajectories.
  EXPECT_EQ(a.configuration(), b.configuration());
}

TEST(ModelParser, WildcardAlternationAndKeep) {
  const ReactionModel model = parse_model(R"(
species * A B
reaction assisted rate=2.0
  (0,0) * -> A
  (1,0) A|B -> keep
end
)");
  const ReactionType& rt = model.reaction(0);
  ASSERT_EQ(rt.transforms().size(), 2u);
  EXPECT_EQ(rt.transforms()[1].src, species_bit(1) | species_bit(2));
  EXPECT_EQ(rt.transforms()[1].tg, kKeep);
}

TEST(ModelParser, AnyKeyword) {
  const ReactionModel model = parse_model(R"(
species * A B
reaction watch rate=1.0
  (0,0) A -> *
  (0,1) any -> keep
end
)");
  EXPECT_EQ(model.reaction(0).transforms()[1].src, model.species().all_mask());
}

TEST(ModelParser, NegativeOffsets) {
  const ReactionModel model = parse_model(R"(
species * A
reaction hop rate=1.0
  (0,0) A -> *
  (-1,-2) * -> A
end
)");
  EXPECT_EQ(model.reaction(0).transforms()[1].offset, (Vec2{-1, -2}));
}

struct BadCase {
  const char* text;
  const char* what;  // substring expected in the error
};

class ParserErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserErrors, RejectsWithUsefulMessage) {
  try {
    (void)parse_model(GetParam().text);
    FAIL() << "expected ModelParseError";
  } catch (const ModelParseError& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().what), std::string::npos)
        << "actual: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        BadCase{"reaction r rate=1\n (0,0) A -> B\nend\n", "before 'species'"},
        BadCase{"species * A\nspecies * B\nreaction r rate=1\n(0,0) * -> A\nend\n",
                "duplicate 'species'"},
        BadCase{"species * A\n", "no reactions"},
        BadCase{"species\nreaction r rate=1\n(0,0) * -> A\nend\n", "names no species"},
        BadCase{"species * A\nreaction r\n(0,0) * -> A\nend\n", "needs rate"},
        BadCase{"species * A\nreaction r rate=0\n(0,0) * -> A\nend\n", "positive"},
        BadCase{"species * A\nreaction r rate=1 orientations=up\n(0,0) * -> A\nend\n",
                "none|xy|all"},
        BadCase{"species * A\nreaction r rate=1\n(0,0) Z -> A\nend\n",
                "unknown species 'Z'"},
        BadCase{"species * A\nreaction r rate=1\n(0,0) * -> Z\nend\n",
                "unknown species 'Z'"},
        BadCase{"species * A\nreaction r rate=1\n0,0 * -> A\nend\n", "expected offset"},
        BadCase{"species * A\nreaction r rate=1\n(0,0) * A\nend\n",
                "expected '(dx,dy) SRC -> TG'"},
        BadCase{"species * A\nreaction r rate=1\n(0,0) * -> A\n", "not closed"},
        BadCase{"species * A\nend\n", "'end' without"},
        BadCase{"species * A\nreaction r rate=1\n(1,0) * -> A\nend\n", "anchor"},
        BadCase{"species * A\nreaction r rate=1\nreaction q rate=1\nend\n", "nested"},
        BadCase{"species * A\nbogus\n", "unexpected token"}));

TEST(ModelParser, ErrorCarriesLineNumber) {
  try {
    (void)parse_model("species * A\nreaction r rate=1\n(0,0) Z -> A\nend\n");
    FAIL();
  } catch (const ModelParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

// The line number must point at the offending line for every failure
// shape, not just species errors — it is the only thing a user has to go
// on in a hand-written .model file.
struct LineCase {
  const char* text;
  std::size_t line;
};

class ParserErrorLines : public ::testing::TestWithParam<LineCase> {};

TEST_P(ParserErrorLines, ReportsTheOffendingLine) {
  try {
    (void)parse_model(GetParam().text);
    FAIL() << "expected ModelParseError";
  } catch (const ModelParseError& e) {
    EXPECT_EQ(e.line(), GetParam().line) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorLines,
    ::testing::Values(
        // reaction before species: flagged at the reaction line
        LineCase{"reaction r rate=1\n(0,0) A -> B\nend\n", 1},
        // duplicate species block: flagged at the second one
        LineCase{"species * A\n\nspecies * B\nreaction r rate=1\n(0,0) * -> A\nend\n",
                 3},
        // missing rate: flagged at the reaction header
        LineCase{"species * A\nreaction r\n(0,0) * -> A\nend\n", 2},
        // malformed transform after blank lines: line count includes them
        LineCase{"species * A\n\n\nreaction r rate=1\n\n0,0 * -> A\nend\n", 6},
        // unclosed reaction: flagged at the reaction header it belongs to
        LineCase{"species * A\nreaction r rate=1\n(0,0) * -> A\n", 2},
        // stray 'end': flagged where it appears
        LineCase{"species * A\nend\n", 2},
        // unknown target species deep in a multi-transform reaction
        LineCase{"species * A\nreaction r rate=1\n(0,0) * -> A\n(0,1) * -> Z\nend\n",
                 4}));

TEST(ModelParser, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "casurf_parser_test.model";
  {
    std::ofstream out(path);
    out << kZgbText;
  }
  const ReactionModel model = parse_model_file(path);
  EXPECT_EQ(model.num_reactions(), 7u);
  std::remove(path.c_str());
}

TEST(ModelParser, MissingFileThrows) {
  EXPECT_THROW((void)parse_model_file("/nonexistent/zzz.model"), std::runtime_error);
}

}  // namespace
}  // namespace casurf
