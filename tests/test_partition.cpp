#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace casurf {
namespace {

TEST(Partition, SingleChunkCoversLattice) {
  const Partition p = Partition::single_chunk(Lattice(6, 4));
  EXPECT_EQ(p.num_chunks(), 1u);
  EXPECT_EQ(p.chunk(0).size(), 24u);
  EXPECT_EQ(p.max_chunk_size(), 24u);
}

TEST(Partition, SingletonsOneSitePerChunk) {
  const Partition p = Partition::singletons(Lattice(5, 5));
  EXPECT_EQ(p.num_chunks(), 25u);
  for (ChunkId c = 0; c < 25; ++c) {
    ASSERT_EQ(p.chunk(c).size(), 1u);
    EXPECT_EQ(p.chunk(c)[0], c);
  }
}

TEST(Partition, ChunksAreDisjointAndCover) {
  const Partition p = Partition::linear_form(Lattice(10, 10), 1, 3, 5);
  std::vector<int> seen(100, 0);
  for (ChunkId c = 0; c < p.num_chunks(); ++c) {
    for (const SiteIndex s : p.chunk(c)) {
      ++seen[s];
      EXPECT_EQ(p.chunk_of(s), c);
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Partition, LinearFormMatchesPaperFig4) {
  // Fig 4 tile, rows top to bottom: 01234 / 34012 / 12340 / 40123 / 23401.
  const Partition p = Partition::linear_form(Lattice(5, 5), 1, 3, 5);
  const int expected[5][5] = {{0, 1, 2, 3, 4},
                              {3, 4, 0, 1, 2},
                              {1, 2, 3, 4, 0},
                              {4, 0, 1, 2, 3},
                              {2, 3, 4, 0, 1}};
  for (std::int32_t y = 0; y < 5; ++y) {
    for (std::int32_t x = 0; x < 5; ++x) {
      EXPECT_EQ(p.chunk_of(p.lattice().index({x, y})),
                static_cast<ChunkId>(expected[y][x]))
          << "site (" << x << "," << y << ")";
    }
  }
  // All five chunks have equal size N/5.
  for (ChunkId c = 0; c < 5; ++c) EXPECT_EQ(p.chunk(c).size(), 5u);
}

TEST(Partition, LinearFormRejectsSeamInconsistency) {
  // 7 x 7 lattice, m = 5: 1*7 % 5 != 0 — the coloring would break across
  // the periodic boundary.
  EXPECT_THROW(Partition::linear_form(Lattice(7, 7), 1, 3, 5), std::invalid_argument);
  EXPECT_THROW(Partition::linear_form(Lattice(10, 10), 1, 3, 0), std::invalid_argument);
}

TEST(Partition, CheckerboardByLinearForm) {
  const Partition p = Partition::linear_form(Lattice(6, 6), 1, 1, 2);
  EXPECT_EQ(p.num_chunks(), 2u);
  EXPECT_EQ(p.chunk_of(p.lattice().index({0, 0})), 0u);
  EXPECT_EQ(p.chunk_of(p.lattice().index({1, 0})), 1u);
  EXPECT_EQ(p.chunk_of(p.lattice().index({0, 1})), 1u);
  EXPECT_EQ(p.chunk_of(p.lattice().index({1, 1})), 0u);
}

TEST(Partition, BlocksBasic) {
  const Partition p = Partition::blocks(Lattice(6, 6), 3, 3);
  EXPECT_EQ(p.num_chunks(), 4u);
  EXPECT_EQ(p.chunk_of(p.lattice().index({0, 0})),
            p.chunk_of(p.lattice().index({2, 2})));
  EXPECT_NE(p.chunk_of(p.lattice().index({2, 2})),
            p.chunk_of(p.lattice().index({3, 2})));
}

TEST(Partition, BlocksShiftMovesEdges) {
  const Partition a = Partition::blocks(Lattice(6, 1), 3, 1);
  const Partition b = Partition::blocks(Lattice(6, 1), 3, 1, {1, 0});
  // Unshifted blocks: {0,1,2}, {3,4,5}. Shifted: {1,2,3}, {4,5,0}.
  EXPECT_EQ(a.chunk_of(2), a.chunk_of(0));
  EXPECT_NE(a.chunk_of(2), a.chunk_of(3));
  EXPECT_EQ(b.chunk_of(1), b.chunk_of(3));
  EXPECT_EQ(b.chunk_of(0), b.chunk_of(4));
  EXPECT_NE(b.chunk_of(3), b.chunk_of(4));
}

TEST(Partition, BlocksValidation) {
  EXPECT_THROW(Partition::blocks(Lattice(6, 6), 4, 3), std::invalid_argument);
  EXPECT_THROW(Partition::blocks(Lattice(6, 6), 0, 3), std::invalid_argument);
}

TEST(Partition, ConstructorRejectsBadAssignments) {
  const Lattice lat(3, 3);
  EXPECT_THROW(Partition(lat, std::vector<ChunkId>(8, 0)), std::invalid_argument);
  // Hole in chunk ids: ids 0 and 2 but no 1.
  std::vector<ChunkId> holey(9, 0);
  holey[4] = 2;
  EXPECT_THROW(Partition(lat, holey), std::invalid_argument);
}

TEST(Partition, MaxChunkSizeUnequalChunks) {
  const Lattice lat(4, 1);
  const Partition p(lat, {0, 0, 0, 1});
  EXPECT_EQ(p.max_chunk_size(), 3u);
}

class LinearFormSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(LinearFormSweep, ChunkSizesBalanced) {
  const auto [w, h, a, b, m] = GetParam();
  const Partition p = Partition::linear_form(Lattice(w, h), a, b, m);
  EXPECT_EQ(p.num_chunks(), static_cast<std::size_t>(m));
  const std::size_t expected = static_cast<std::size_t>(w) * h / m;
  for (ChunkId c = 0; c < p.num_chunks(); ++c) {
    EXPECT_EQ(p.chunk(c).size(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Forms, LinearFormSweep,
    ::testing::Values(std::tuple{10, 10, 1, 3, 5}, std::tuple{20, 15, 1, 3, 5},
                      std::tuple{8, 8, 1, 1, 2}, std::tuple{12, 12, 1, 2, 3},
                      std::tuple{100, 100, 1, 3, 5}));

}  // namespace
}  // namespace casurf
