#include "partition/analysis.hpp"

#include <gtest/gtest.h>

#include "models/zgb.hpp"
#include "partition/coloring.hpp"

namespace casurf {
namespace {

TEST(PartitionAnalysis, OptimalFiveChunkReport) {
  auto zgb = models::make_zgb();
  const Lattice lat(20, 20);
  const auto report = analyse_partition(make_partition(lat, zgb.model), zgb.model);
  EXPECT_EQ(report.num_chunks, 5u);
  EXPECT_EQ(report.total_sites, 400u);
  EXPECT_EQ(report.min_chunk, 80u);
  EXPECT_EQ(report.max_chunk, 80u);
  EXPECT_DOUBLE_EQ(report.balance, 1.0);
  EXPECT_TRUE(report.valid);
  EXPECT_DOUBLE_EQ(report.optimality_ratio, 1.0);
}

TEST(PartitionAnalysis, DetectsInvalidPartition) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  const auto report =
      analyse_partition(Partition::linear_form(lat, 1, 1, 2), zgb.model);
  EXPECT_FALSE(report.valid);
}

TEST(PartitionAnalysis, ImbalanceMeasured) {
  const Lattice lat(4, 1);
  const Partition lopsided(lat, {0, 0, 0, 1});
  auto zgb = models::make_zgb();
  const auto report = analyse_partition(lopsided, zgb.model);
  EXPECT_EQ(report.min_chunk, 1u);
  EXPECT_EQ(report.max_chunk, 3u);
  EXPECT_DOUBLE_EQ(report.balance, 1.5);  // 3 / 2
}

TEST(PartitionAnalysis, GranularityBound) {
  PartitionReport r;
  r.num_chunks = 5;
  r.total_sites = 400;
  r.max_chunk = 80;
  r.mean_chunk = 80;
  // p = 4: ceil(80/4) = 20 rounds x 5 chunks = 100 vs 400 serial -> 4x.
  EXPECT_DOUBLE_EQ(r.granularity_speedup_bound(4), 4.0);
  // p = 1: no speedup by definition.
  EXPECT_DOUBLE_EQ(r.granularity_speedup_bound(1), 1.0);
  // p = 128 > chunk size: bound saturates at total/num_chunks = 80.
  EXPECT_DOUBLE_EQ(r.granularity_speedup_bound(128), 80.0);
}

TEST(PartitionAnalysis, SingletonsBoundIsChunkLimited) {
  auto zgb = models::make_zgb();
  const Lattice lat(8, 8);
  const auto report = analyse_partition(Partition::singletons(lat), zgb.model);
  EXPECT_TRUE(report.valid);
  // One site per chunk: no intra-chunk parallelism at all.
  EXPECT_DOUBLE_EQ(report.granularity_speedup_bound(8), 1.0);
}

TEST(PartitionAnalysis, ToStringMentionsKeyNumbers) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  const auto report = analyse_partition(make_partition(lat, zgb.model), zgb.model);
  const std::string text = to_string(report);
  EXPECT_NE(text.find("5 chunks"), std::string::npos);
  EXPECT_NE(text.find("satisfied"), std::string::npos);
  EXPECT_NE(text.find("optimal"), std::string::npos);
}

}  // namespace
}  // namespace casurf
