#include "ca/pndca.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dmc/rsm.hpp"
#include "models/zgb.hpp"
#include "partition/coloring.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

Partition five_chunks(const Lattice& lat) { return Partition::linear_form(lat, 1, 3, 5); }

TEST(Pndca, RequiresAtLeastOnePartition) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  EXPECT_THROW(PndcaSimulator(m, Configuration(Lattice(5, 5), 2, 0), {}, 1),
               std::invalid_argument);
}

TEST(Pndca, RejectsPartitionLatticeMismatch) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  EXPECT_THROW(PndcaSimulator(m, Configuration(Lattice(5, 5), 2, 0),
                              {Partition::single_chunk(Lattice(10, 10))}, 1),
               std::invalid_argument);
}

TEST(Pndca, FullSweepPoliciesUseNTrialsPerStep) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  for (const ChunkPolicy policy : {ChunkPolicy::kInOrder, ChunkPolicy::kRandomOrder}) {
    PndcaSimulator sim(m, Configuration(Lattice(10, 10), 2, 0),
                       {five_chunks(Lattice(10, 10))}, 2, policy);
    sim.mc_step();
    EXPECT_EQ(sim.counters().trials, 100u);
  }
}

TEST(Pndca, ScheduleInOrder) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  PndcaSimulator sim(m, Configuration(Lattice(10, 10), 2, 0),
                     {five_chunks(Lattice(10, 10))}, 3, ChunkPolicy::kInOrder);
  sim.mc_step();
  EXPECT_EQ(sim.last_schedule(), (std::vector<ChunkId>{0, 1, 2, 3, 4}));
}

TEST(Pndca, ScheduleRandomOrderIsPermutation) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  PndcaSimulator sim(m, Configuration(Lattice(10, 10), 2, 0),
                     {five_chunks(Lattice(10, 10))}, 4, ChunkPolicy::kRandomOrder);
  bool saw_non_identity = false;
  for (int i = 0; i < 20; ++i) {
    sim.mc_step();
    std::vector<ChunkId> s = sim.last_schedule();
    if (!std::ranges::is_sorted(s)) saw_non_identity = true;
    std::ranges::sort(s);
    EXPECT_EQ(s, (std::vector<ChunkId>{0, 1, 2, 3, 4}));
  }
  EXPECT_TRUE(saw_non_identity);
}

TEST(Pndca, ScheduleRandomWithReplacementDrawsMlChunks) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  PndcaSimulator sim(m, Configuration(Lattice(10, 10), 2, 0),
                     {five_chunks(Lattice(10, 10))}, 5,
                     ChunkPolicy::kRandomWithReplacement);
  std::set<std::vector<ChunkId>> seen;
  for (int i = 0; i < 30; ++i) {
    sim.mc_step();
    EXPECT_EQ(sim.last_schedule().size(), 5u);
    for (const ChunkId c : sim.last_schedule()) EXPECT_LT(c, 5u);
    seen.insert(sim.last_schedule());
  }
  // With replacement, repeated chunks appear: some schedule is not a
  // permutation over 30 draws with overwhelming probability.
  bool has_repeat = false;
  for (const auto& s : seen) {
    std::set<ChunkId> uniq(s.begin(), s.end());
    if (uniq.size() < s.size()) has_repeat = true;
  }
  EXPECT_TRUE(has_repeat);
}

TEST(Pndca, RateWeightedPolicyRuns) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  PndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant),
                     {five_chunks(lat)}, 6, ChunkPolicy::kRateWeighted);
  for (int i = 0; i < 10; ++i) sim.mc_step();
  EXPECT_EQ(sim.counters().steps, 10u);
  EXPECT_GT(sim.counters().executed, 0u);
}

TEST(Pndca, RateWeightedNeverSchedulesZeroWeightChunk) {
  // Chunk 0 is pre-filled with A and the only reaction is adsorption onto
  // vacant sites, so chunk 0 carries zero enabled rate. It must never
  // appear in a rate-weighted schedule — previously the duplicate
  // cumulative values let the selection fall into its zero-width band.
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));
  const Lattice lat(10, 10);
  const Partition p = five_chunks(lat);
  Configuration cfg(lat, 2, 0);
  for (const SiteIndex s : p.chunk(0)) cfg.set(s, 1);
  PndcaSimulator sim(m, std::move(cfg), {p}, 13, ChunkPolicy::kRateWeighted);
  sim.mc_step();
  ASSERT_NE(sim.rate_cache(), nullptr);
  EXPECT_DOUBLE_EQ(sim.rate_cache()->chunk_rate(0, 0), 0.0);
  for (const ChunkId c : sim.last_schedule()) EXPECT_NE(c, 0u);
}

TEST(Pndca, SameSeedSameTrajectory) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  PndcaSimulator a(zgb.model, Configuration(lat, 3, zgb.vacant), {five_chunks(lat)}, 7);
  PndcaSimulator b(zgb.model, Configuration(lat, 3, zgb.vacant), {five_chunks(lat)}, 7);
  for (int i = 0; i < 30; ++i) {
    a.mc_step();
    b.mc_step();
  }
  EXPECT_EQ(a.configuration(), b.configuration());
  EXPECT_DOUBLE_EQ(a.time(), b.time());
}

TEST(Pndca, EquilibriumMatchesRsmOnIndependentSites) {
  const double ka = 1.0, kd = 0.5;
  const ReactionModel m = ads_des_model(ka, kd);
  const Lattice lat(30, 30);
  PndcaSimulator sim(m, Configuration(lat, 2, 0), {five_chunks(lat)}, 8);
  sim.advance_to(30.0);
  double avg = 0;
  for (int i = 0; i < 50; ++i) {
    sim.mc_step();
    avg += sim.configuration().coverage(1);
  }
  avg /= 50;
  EXPECT_NEAR(avg, ka / (ka + kd), 0.02);
}

TEST(Pndca, ZgbKineticsCloseToRsm) {
  // With five conflict-free chunks and full random-order sweeps, PNDCA
  // tracks RSM's ZGB coverage closely (paper Fig 10 regime).
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(40, 40);
  PndcaSimulator ca(zgb.model, Configuration(lat, 3, zgb.vacant), {five_chunks(lat)}, 9);
  RsmSimulator rsm(zgb.model, Configuration(lat, 3, zgb.vacant), 10);
  ca.advance_to(10.0);
  rsm.advance_to(10.0);
  double ca_avg = 0, rsm_avg = 0;
  for (int i = 0; i < 30; ++i) {
    ca.mc_step();
    rsm.mc_step();
    ca_avg += ca.configuration().coverage(zgb.o);
    rsm_avg += rsm.configuration().coverage(zgb.o);
  }
  EXPECT_NEAR(ca_avg / 30, rsm_avg / 30, 0.08);
}

TEST(Pndca, MultiplePartitionsCycle) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const Lattice lat(6, 6);
  PndcaSimulator sim(m, Configuration(lat, 2, 0),
                     {Partition::blocks(lat, 3, 3), Partition::blocks(lat, 3, 3, {1, 1})},
                     11, ChunkPolicy::kInOrder);
  sim.mc_step();
  const Partition& p0 = sim.current_partition();
  EXPECT_EQ(p0.chunk_of(0), sim.partitions()[0].chunk_of(0));
  sim.mc_step();
  // Second step used the shifted partition.
  EXPECT_EQ(sim.current_partition().chunk_of(lat.index({1, 1})),
            sim.partitions()[1].chunk_of(lat.index({1, 1})));
}

TEST(Pndca, SingletonPartitionWithReplacementMatchesRsmEquilibrium) {
  // |P| = N with random chunk selection is RSM (paper section 5).
  const double ka = 2.0, kd = 1.0;
  const ReactionModel m = ads_des_model(ka, kd);
  const Lattice lat(16, 16);
  PndcaSimulator sim(m, Configuration(lat, 2, 0), {Partition::singletons(lat)}, 12,
                     ChunkPolicy::kRandomWithReplacement);
  sim.advance_to(25.0);
  double avg = 0;
  for (int i = 0; i < 60; ++i) {
    sim.mc_step();
    avg += sim.configuration().coverage(1);
  }
  EXPECT_NEAR(avg / 60, ka / (ka + kd), 0.025);
}

}  // namespace
}  // namespace casurf
