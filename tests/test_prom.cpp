// Prometheus exposition (obs/prom.hpp): a golden-file render of a
// hand-built registry, render→parse round trips, the strict parser's
// negative space, histogram invariant checking, and quantile estimation
// over merged label sets. The golden test is the format contract for
// external scrapers — update it deliberately, never to paper over a
// renderer change.

#include "obs/prom.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace casurf::obs::prom {
namespace {

TEST(PromSeries, EncodesLabelsIntoTheRegistryKey) {
  EXPECT_EQ(series("casurf_jobs", {}), "casurf_jobs");
  EXPECT_EQ(series("casurf_jobs", {{"state", "running"}}),
            R"(casurf_jobs{state="running"})");
  EXPECT_EQ(series("m", {{"a", "1"}, {"b", "2"}}), R"(m{a="1",b="2"})");
  // Hostile label values are escaped, not trusted.
  EXPECT_EQ(series("m", {{"p", "a\\b\"c\nd"}}), "m{p=\"a\\\\b\\\"c\\nd\"}");
}

TEST(PromRender, GoldenExposition) {
  MetricsRegistry reg;
  reg.counter("casurf_job_submissions_total").add(3);
  reg.counter(series("casurf_http_requests_total", {{"method", "GET"},
                                                    {"route", "/stats"},
                                                    {"status", "200"}}))
      .add(7);
  reg.gauge("casurf_queue_depth").set(2);
  reg.gauge(series("casurf_jobs", {{"state", "running"}})).set(1);
  reg.timer("trial/batch").add_ns(1500);  // slash taxonomy → sanitised name
  Histogram& h = reg.histogram("casurf_job_duration_ns");
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(1000);

  const std::string text = render(reg);
  if (!kPromCompiled) {
    EXPECT_EQ(text, "");
    return;
  }
  EXPECT_EQ(text,
            "# TYPE casurf_http_requests_total counter\n"
            "casurf_http_requests_total{method=\"GET\",route=\"/stats\","
            "status=\"200\"} 7\n"
            "# TYPE casurf_job_duration_ns histogram\n"
            "casurf_job_duration_ns_bucket{le=\"0\"} 1\n"
            "casurf_job_duration_ns_bucket{le=\"1\"} 2\n"
            "casurf_job_duration_ns_bucket{le=\"3\"} 2\n"
            "casurf_job_duration_ns_bucket{le=\"7\"} 3\n"
            "casurf_job_duration_ns_bucket{le=\"15\"} 3\n"
            "casurf_job_duration_ns_bucket{le=\"31\"} 3\n"
            "casurf_job_duration_ns_bucket{le=\"63\"} 3\n"
            "casurf_job_duration_ns_bucket{le=\"127\"} 3\n"
            "casurf_job_duration_ns_bucket{le=\"255\"} 3\n"
            "casurf_job_duration_ns_bucket{le=\"511\"} 3\n"
            "casurf_job_duration_ns_bucket{le=\"1023\"} 4\n"
            "casurf_job_duration_ns_bucket{le=\"+Inf\"} 4\n"
            "casurf_job_duration_ns_sum 1006\n"
            "casurf_job_duration_ns_count 4\n"
            "# TYPE casurf_job_submissions_total counter\n"
            "casurf_job_submissions_total 3\n"
            "# TYPE casurf_jobs gauge\n"
            "casurf_jobs{state=\"running\"} 1\n"
            "# TYPE casurf_queue_depth gauge\n"
            "casurf_queue_depth 2\n"
            "# TYPE trial_batch summary\n"
            "trial_batch_sum 1500\n"
            "trial_batch_count 1\n");
}

TEST(PromRender, ParsesItsOwnOutput) {
  if (!kPromCompiled) GTEST_SKIP() << "renderer compiled out";
  MetricsRegistry reg;
  reg.counter(series("c_total", {{"k", "weird \"v\"\\\n"}})).add(11);
  reg.gauge("g").set(2.25);
  reg.gauge("g_nan").set(std::nan(""));
  reg.timer("t").add_ns(900);
  Histogram& h = reg.histogram("lat_ns");
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v * v);

  const auto families = parse(render(reg));
  ASSERT_EQ(families.size(), 5u);
  EXPECT_EQ(families[0].name, "c_total");
  EXPECT_EQ(families[0].type, "counter");
  ASSERT_EQ(families[0].samples.size(), 1u);
  ASSERT_EQ(families[0].samples[0].labels.size(), 1u);
  // The hostile label value survives the escape→unescape round trip.
  EXPECT_EQ(families[0].samples[0].labels[0].second, "weird \"v\"\\\n");
  EXPECT_EQ(families[0].samples[0].value, 11);
  EXPECT_EQ(families[1].name, "g");
  EXPECT_DOUBLE_EQ(families[1].samples[0].value, 2.25);
  EXPECT_EQ(families[2].name, "g_nan");
  EXPECT_TRUE(std::isnan(families[2].samples[0].value));
  EXPECT_EQ(families[3].name, "lat_ns");
  EXPECT_EQ(families[3].type, "histogram");
  EXPECT_EQ(families[4].type, "summary");
}

TEST(PromRender, KindCollisionKeepsTheFirstKindOnly) {
  if (!kPromCompiled) GTEST_SKIP() << "renderer compiled out";
  MetricsRegistry reg;
  reg.counter("clash").add(1);
  reg.gauge("clash").set(9);  // dropped: counter claimed the sanitised base
  const auto families = parse(render(reg));
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].type, "counter");
  ASSERT_EQ(families[0].samples.size(), 1u);
  EXPECT_EQ(families[0].samples[0].value, 1);
}

TEST(PromParse, AcceptsHelpCommentsAndEmptyInput) {
  EXPECT_TRUE(parse("").empty());
  const auto families = parse(
      "# HELP x documentation text here\n"
      "# TYPE x counter\n"
      "x 1\n");
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].samples[0].value, 1);
}

TEST(PromParse, RejectsEverythingRenderNeverEmits) {
  // Sample before any # TYPE line.
  EXPECT_THROW(parse("x 1\n"), std::runtime_error);
  // Missing final newline (a truncated scrape).
  EXPECT_THROW(parse("# TYPE x counter\nx 1"), std::runtime_error);
  // Empty interior line.
  EXPECT_THROW(parse("# TYPE x counter\n\nx 1\n"), std::runtime_error);
  // Reopened family.
  EXPECT_THROW(
      parse("# TYPE x counter\nx 1\n# TYPE y counter\ny 1\n"
            "# TYPE x counter\nx 2\n"),
      std::runtime_error);
  // Sample outside the open family.
  EXPECT_THROW(parse("# TYPE a counter\nb 1\n"), std::runtime_error);
  // Timestamps (a second token after the value).
  EXPECT_THROW(parse("# TYPE x counter\nx 1 1700000000\n"), std::runtime_error);
  // Garbage value.
  EXPECT_THROW(parse("# TYPE x counter\nx one\n"), std::runtime_error);
  // Unknown metric type and unrecognised comment.
  EXPECT_THROW(parse("# TYPE x wat\nx 1\n"), std::runtime_error);
  EXPECT_THROW(parse("# a stray comment\n"), std::runtime_error);
  // Label syntax: trailing comma, bad escape, unterminated block.
  EXPECT_THROW(parse("# TYPE x counter\nx{a=\"1\",} 2\n"), std::runtime_error);
  EXPECT_THROW(parse("# TYPE x counter\nx{a=\"\\q\"} 2\n"), std::runtime_error);
  EXPECT_THROW(parse("# TYPE x counter\nx{a=\"1\" 2\n"), std::runtime_error);
}

TEST(PromParse, ChecksHistogramInvariantsAtFamilyClose) {
  // A well-formed histogram parses.
  EXPECT_NO_THROW(parse(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 9\n"
      "h_count 5\n"));
  // Decreasing cumulative counts.
  EXPECT_THROW(parse("# TYPE h histogram\n"
                     "h_bucket{le=\"1\"} 5\n"
                     "h_bucket{le=\"2\"} 3\n"
                     "h_bucket{le=\"+Inf\"} 5\n"
                     "h_count 5\n"),
               std::runtime_error);
  // Non-ascending le.
  EXPECT_THROW(parse("# TYPE h histogram\n"
                     "h_bucket{le=\"2\"} 1\n"
                     "h_bucket{le=\"1\"} 2\n"
                     "h_bucket{le=\"+Inf\"} 2\n"
                     "h_count 2\n"),
               std::runtime_error);
  // Missing +Inf bucket.
  EXPECT_THROW(parse("# TYPE h histogram\n"
                     "h_bucket{le=\"1\"} 2\n"
                     "h_count 2\n"),
               std::runtime_error);
  // _count disagrees with +Inf.
  EXPECT_THROW(parse("# TYPE h histogram\n"
                     "h_bucket{le=\"+Inf\"} 4\n"
                     "h_count 5\n"),
               std::runtime_error);
  // _bucket without an le label.
  EXPECT_THROW(parse("# TYPE h histogram\n"
                     "h_bucket{x=\"1\"} 4\n"
                     "h_count 4\n"),
               std::runtime_error);
}

TEST(PromQuantile, InterpolatesInsideCumulativeBuckets) {
  const auto families = parse(
      "# TYPE h histogram\n"
      "h_bucket{le=\"10\"} 5\n"
      "h_bucket{le=\"20\"} 10\n"
      "h_bucket{le=\"+Inf\"} 10\n"
      "h_sum 100\n"
      "h_count 10\n");
  ASSERT_EQ(families.size(), 1u);
  const Family& h = families[0];
  EXPECT_DOUBLE_EQ(quantile(h, 0.50), 10.0);   // rank 5 → top of bucket 1
  EXPECT_DOUBLE_EQ(quantile(h, 0.75), 15.0);   // midway through bucket 2
  EXPECT_DOUBLE_EQ(quantile(h, 1.00), 20.0);
  EXPECT_DOUBLE_EQ(quantile(h, 0.0), 0.0);
}

TEST(PromQuantile, PlusInfBucketReturnsTheTopFiniteEdge) {
  const auto families = parse(
      "# TYPE h histogram\n"
      "h_bucket{le=\"10\"} 5\n"
      "h_bucket{le=\"+Inf\"} 10\n"
      "h_count 10\n");
  EXPECT_DOUBLE_EQ(quantile(families[0], 0.9), 10.0);
}

TEST(PromQuantile, MergesDifferentLabelSetGrids) {
  // Two label sets with different (renderer-truncated) grids; merged mass:
  // 4 in (0,10], 4 in (10,20].
  const auto families = parse(
      "# TYPE h histogram\n"
      "h_bucket{tenant=\"a\",le=\"10\"} 4\n"
      "h_bucket{tenant=\"a\",le=\"+Inf\"} 4\n"
      "h_count{tenant=\"a\"} 4\n"
      "h_bucket{tenant=\"b\",le=\"10\"} 0\n"
      "h_bucket{tenant=\"b\",le=\"20\"} 4\n"
      "h_bucket{tenant=\"b\",le=\"+Inf\"} 4\n"
      "h_count{tenant=\"b\"} 4\n");
  const Family& h = families[0];
  EXPECT_DOUBLE_EQ(quantile(h, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(quantile(h, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(quantile(h, 0.0), 0.0);
}

TEST(PromQuantile, EmptyHistogramAndWrongKind) {
  const auto families = parse(
      "# TYPE g gauge\n"
      "g 1\n");
  EXPECT_THROW((void)quantile(families[0], 0.5), std::runtime_error);
  Family empty{"h", "histogram", {}};
  EXPECT_DOUBLE_EQ(quantile(empty, 0.5), 0.0);
}

}  // namespace
}  // namespace casurf::obs::prom
