// Cross-product property harness: every algorithm x every bundled model
// must uphold the structural invariants of a lattice simulation, whatever
// its accuracy class. One parameterized fixture, dozens of combinations.

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.hpp"
#include "models/diffusion.hpp"
#include "models/ising.hpp"
#include "models/pt100.hpp"
#include "models/zgb.hpp"

namespace casurf {
namespace {

enum class ModelKind { kZgb, kPt100, kDiffusion, kIsing, kSingleFile };

struct Combo {
  Algorithm algorithm;
  ModelKind model;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string name = algorithm_name(info.param.algorithm);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  switch (info.param.model) {
    case ModelKind::kZgb: return name + "_zgb";
    case ModelKind::kPt100: return name + "_pt100";
    case ModelKind::kDiffusion: return name + "_diffusion";
    case ModelKind::kIsing: return name + "_ising";
    case ModelKind::kSingleFile: return name + "_singlefile";
  }
  return name;
}

struct BuiltModel {
  ReactionModel model;
  Configuration initial;
};

BuiltModel build(ModelKind kind) {
  switch (kind) {
    case ModelKind::kZgb: {
      auto m = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
      return {std::move(m.model), Configuration(Lattice(12, 12), 3, m.vacant)};
    }
    case ModelKind::kPt100: {
      auto m = models::make_pt100();
      return {std::move(m.model), Configuration(Lattice(10, 10), 5, m.hex_vac)};
    }
    case ModelKind::kDiffusion: {
      auto m = models::make_diffusion(1.0);
      Configuration cfg(Lattice(12, 12), 2, m.vacant);
      for (SiteIndex s = 0; s < cfg.size(); s += 3) cfg.set(s, m.particle);
      return {std::move(m.model), std::move(cfg)};
    }
    case ModelKind::kIsing: {
      auto m = models::make_ising(0.4);
      return {std::move(m.model), Configuration(Lattice(10, 10), 2, m.up)};
    }
    case ModelKind::kSingleFile: {
      auto m = models::make_single_file(1.0);
      Configuration cfg(Lattice(32, 1), 2, m.vacant);
      for (SiteIndex s = 0; s < cfg.size(); s += 2) cfg.set(s, m.particle);
      return {std::move(m.model), std::move(cfg)};
    }
  }
  throw std::logic_error("unknown model kind");
}

class AlgorithmModelSweep : public ::testing::TestWithParam<Combo> {};

TEST_P(AlgorithmModelSweep, StructuralInvariantsHold) {
  const Combo combo = GetParam();
  BuiltModel built = build(combo.model);
  SimulationOptions opt;
  opt.algorithm = combo.algorithm;
  opt.seed = 99;
  opt.threads = 2;
  opt.l_trials = 8;
  auto sim = make_simulator(built.model, built.initial, opt);

  double last_time = sim->time();
  for (int step = 0; step < 25; ++step) {
    sim->mc_step();
    ASSERT_GE(sim->time(), last_time);
    last_time = sim->time();
  }

  // Coverage closure: maintained counts equal a raw recount and sum to N.
  const Configuration& cfg = sim->configuration();
  std::vector<std::uint64_t> recount(cfg.num_species(), 0);
  for (SiteIndex s = 0; s < cfg.size(); ++s) ++recount[cfg.get(s)];
  std::uint64_t total = 0;
  for (Species sp = 0; sp < cfg.num_species(); ++sp) {
    EXPECT_EQ(cfg.count(sp), recount[sp]) << "species " << static_cast<int>(sp);
    total += cfg.count(sp);
  }
  EXPECT_EQ(total, cfg.size());

  // Counter closure.
  const SimCounters& c = sim->counters();
  EXPECT_LE(c.executed, c.trials);
  std::uint64_t per_type_sum = 0;
  for (const std::uint64_t n : c.executed_per_type) per_type_sum += n;
  EXPECT_EQ(per_type_sum, c.executed);
}

TEST_P(AlgorithmModelSweep, DeterministicForFixedSeed) {
  const Combo combo = GetParam();
  BuiltModel built = build(combo.model);
  SimulationOptions opt;
  opt.algorithm = combo.algorithm;
  opt.seed = 1234;
  opt.threads = 3;
  opt.l_trials = 8;
  auto a = make_simulator(built.model, built.initial, opt);
  auto b = make_simulator(built.model, built.initial, opt);
  for (int step = 0; step < 12; ++step) {
    a->mc_step();
    b->mc_step();
  }
  EXPECT_TRUE(a->configuration() == b->configuration());
  EXPECT_DOUBLE_EQ(a->time(), b->time());
  EXPECT_EQ(a->counters().executed, b->counters().executed);
}

TEST_P(AlgorithmModelSweep, ParticleConservationWhereApplicable) {
  const Combo combo = GetParam();
  if (combo.model != ModelKind::kDiffusion && combo.model != ModelKind::kSingleFile) {
    GTEST_SKIP() << "conservation law only applies to pure-diffusion models";
  }
  BuiltModel built = build(combo.model);
  const std::uint64_t before = built.initial.count(1);
  SimulationOptions opt;
  opt.algorithm = combo.algorithm;
  opt.seed = 5;
  opt.threads = 2;
  auto sim = make_simulator(built.model, built.initial, opt);
  for (int step = 0; step < 40; ++step) sim->mc_step();
  EXPECT_EQ(sim->configuration().count(1), before);
}

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  for (const Algorithm a :
       {Algorithm::kRsm, Algorithm::kVssm, Algorithm::kFrm, Algorithm::kNdca,
        Algorithm::kPndca, Algorithm::kLPndca, Algorithm::kTPndca,
        Algorithm::kParallelPndca}) {
    for (const ModelKind m : {ModelKind::kZgb, ModelKind::kPt100,
                              ModelKind::kDiffusion, ModelKind::kIsing,
                              ModelKind::kSingleFile}) {
      combos.push_back(Combo{a, m});
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(Everything, AlgorithmModelSweep,
                         ::testing::ValuesIn(all_combos()), combo_name);

}  // namespace
}  // namespace casurf
