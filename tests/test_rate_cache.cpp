#include "ca/rate_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ca/lpndca.hpp"
#include "ca/pndca.hpp"
#include "ca/tpndca.hpp"
#include "models/zgb.hpp"
#include "parallel/parallel_pndca.hpp"
#include "partition/type_partition.hpp"
#include "rng/xoshiro.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

/// Brute-force recount of the cache invariant: count(slot, c, t) must equal
/// the number of sites s with chunk_of(s) == c and reaction t enabled at s.
void expect_counts_match_brute_force(const EnabledRateCache& cache, std::size_t slot,
                                     const Partition& p, const ReactionModel& model,
                                     const Configuration& cfg, const char* context) {
  const auto num_types = static_cast<ReactionIndex>(model.num_reactions());
  std::vector<std::uint32_t> brute(p.num_chunks() * num_types, 0);
  for (ReactionIndex t = 0; t < num_types; ++t) {
    const ReactionType& rt = model.reaction(t);
    for (SiteIndex s = 0; s < cfg.size(); ++s) {
      if (rt.enabled(cfg, s)) ++brute[p.chunk_of(s) * num_types + t];
    }
  }
  for (ChunkId c = 0; c < p.num_chunks(); ++c) {
    for (ReactionIndex t = 0; t < num_types; ++t) {
      ASSERT_EQ(cache.count(slot, c, t), brute[c * num_types + t])
          << context << ": chunk " << c << " type " << model.reaction(t).name();
    }
  }
}

TEST(ChunkSampler, MatchesWeights) {
  ChunkSampler sampler;
  sampler.assign({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(sampler.total(), 10.0);
  Xoshiro256 rng(1);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(uniform01(rng))];
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), (i + 1) / 10.0, 0.005) << i;
  }
}

TEST(ChunkSampler, ZeroWeightChunksUnselectable) {
  ChunkSampler sampler;
  sampler.assign({1.0, 0.0, 2.0, 0.0, 1.0});
  Xoshiro256 rng(2);
  for (int i = 0; i < 50000; ++i) {
    const ChunkId c = sampler.sample(uniform01(rng));
    ASSERT_NE(c, 1u);
    ASSERT_NE(c, 3u);
  }
}

TEST(ChunkSampler, BoundaryOverflowNeverLandsOnTrailingZeroWeight) {
  // When the scaled target reaches the total (u == 1.0 from a misbehaving
  // caller, or u * total rounding up for subnormal totals), the Fenwick
  // descent consumes the whole tree and the clamp lands on the last chunk
  // regardless of its weight. The sampler must walk back to the last chunk
  // whose weight is nonzero.
  ChunkSampler sampler;
  sampler.assign({4.0, 0.0});
  EXPECT_EQ(sampler.sample(1.0), 0u);
  EXPECT_EQ(sampler.sample(std::nextafter(1.0, 0.0)), 0u);

  sampler.assign({1.0, 3.0, 0.0, 0.0});
  EXPECT_EQ(sampler.sample(1.0), 1u);
  EXPECT_EQ(sampler.sample(std::nextafter(1.0, 0.0)), 1u);
}

TEST(ChunkSampler, NegativeAndNanWeightsClampToZero) {
  // A negative weight makes the Fenwick prefix sums non-monotone and a NaN
  // poisons every ancestor sum; both must clamp to zero (unselectable)
  // instead of skewing or breaking the draw.
  ChunkSampler sampler;
  sampler.assign({2.0, -1.0, 2.0, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_DOUBLE_EQ(sampler.total(), 4.0);
  EXPECT_DOUBLE_EQ(sampler.weight(1), 0.0);
  EXPECT_DOUBLE_EQ(sampler.weight(3), 0.0);
  Xoshiro256 rng(7);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(uniform01(rng))];
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[3], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.5, 0.01);
}

TEST(ChunkSampler, AccumulatedRoundingAdversarial) {
  // Adversarial accumulated rounding: the descent subtracts node sums in a
  // different association than assign() added them, so with hundreds of
  // irrationally-spaced weights and u just below 1 the walk can drift past
  // the last positive chunk into a long zero tail. Every draw must still
  // land on a positive-weight chunk.
  std::vector<double> weights;
  for (int i = 0; i < 300; ++i) {
    weights.push_back(0.1 * (1.0 + std::sin(static_cast<double>(i))));
  }
  for (int i = 0; i < 200; ++i) weights.push_back(0.0);  // zero tail
  ChunkSampler sampler;
  sampler.assign(weights);
  const ChunkId last_positive = 299;
  for (double u :
       {std::nextafter(1.0, 0.0), 1.0 - 1e-16, 1.0 - 1e-12, 0.9999999, 1.0}) {
    const ChunkId c = sampler.sample(u);
    EXPECT_LE(c, last_positive) << "u=" << u << " landed in the zero tail";
    EXPECT_GT(sampler.weight(c), 0.0) << "u=" << u;
  }
  Xoshiro256 rng(11);
  for (int i = 0; i < 200000; ++i) {
    const ChunkId c = sampler.sample(uniform01(rng));
    ASSERT_GT(sampler.weight(c), 0.0) << "draw " << i << " chunk " << c;
  }
}

TEST(ChunkSampler, TinyTotalsStillExcludeZeroChunks) {
  // Subnormal-scale totals maximize relative rounding error in u * total.
  ChunkSampler sampler;
  sampler.assign({5e-324, 0.0, 5e-324, 0.0, 0.0});
  for (double u : {0.0, 0.25, 0.5, std::nextafter(1.0, 0.0), 1.0}) {
    const ChunkId c = sampler.sample(u);
    EXPECT_TRUE(c == 0u || c == 2u) << "u=" << u << " chose " << c;
  }
}

TEST(ChunkSampler, SingleChunk) {
  ChunkSampler sampler;
  sampler.assign({0.5});
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(uniform01(rng)), 0u);
  EXPECT_EQ(sampler.sample(std::nextafter(1.0, 0.0)), 0u);
}

TEST(RateCache, InitialCountsMatchBruteForce) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  Configuration cfg(lat, 3, zgb.vacant);
  cfg.set(Vec2{1, 1}, zgb.co);
  cfg.set(Vec2{2, 1}, zgb.o);
  cfg.set(Vec2{5, 5}, zgb.o);

  EnabledRateCache cache(zgb.model, cfg);
  const Partition p = Partition::linear_form(lat, 1, 3, 5);
  ASSERT_EQ(cache.add_partition(p), 0u);
  expect_counts_match_brute_force(cache, 0, p, zgb.model, cfg, "initial");

  // Chunk rates are the k-weighted counts.
  for (ChunkId c = 0; c < p.num_chunks(); ++c) {
    double expected = 0;
    for (ReactionIndex t = 0; t < zgb.model.num_reactions(); ++t) {
      expected += zgb.model.reaction(t).rate() * static_cast<double>(cache.count(0, c, t));
    }
    EXPECT_DOUBLE_EQ(cache.chunk_rate(0, c), expected);
  }
}

TEST(RateCache, RefusesMismatchedPartition) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const Configuration cfg(Lattice(6, 6), 2, 0);
  EnabledRateCache cache(m, cfg);
  EXPECT_THROW(cache.add_partition(Partition::single_chunk(Lattice(5, 5))),
               std::invalid_argument);
}

TEST(RateCache, IncrementalRefreshTracksWrites) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  Configuration cfg(lat, 3, zgb.vacant);
  EnabledRateCache cache(zgb.model, cfg);
  const Partition p = Partition::linear_form(lat, 1, 3, 5);
  cache.add_partition(p);

  // Random walk of single-site writes, refreshing after each; the counts
  // must track the brute-force recount the whole way.
  Xoshiro256 rng(7);
  for (int i = 0; i < 400; ++i) {
    const auto s = static_cast<SiteIndex>(uniform_below(rng, cfg.size()));
    cfg.set(s, static_cast<Species>(uniform_below(rng, 3)));
    cache.refresh_after(cfg, s);
    if (i % 25 == 0) {
      expect_counts_match_brute_force(cache, 0, p, zgb.model, cfg, "write walk");
    }
  }
  expect_counts_match_brute_force(cache, 0, p, zgb.model, cfg, "write walk end");
}

TEST(RateCache, InvariantHoldsOver1000ZgbSteps) {
  // The acceptance-criterion test: counts == brute-force recount after
  // every MC step of a rate-weighted ZGB trajectory, >= 1000 steps.
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(10, 10);
  const Partition p = Partition::linear_form(lat, 1, 3, 5);
  PndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant), {p}, 21,
                     ChunkPolicy::kRateWeighted);
  ASSERT_NE(sim.rate_cache(), nullptr);
  for (int step = 0; step < 1000; ++step) {
    sim.mc_step();
    expect_counts_match_brute_force(*sim.rate_cache(), 0, p, zgb.model,
                                    sim.configuration(), "ZGB step");
  }
  // The brute-force reference and the cache agree on the chunk rates too.
  for (ChunkId c = 0; c < p.num_chunks(); ++c) {
    EXPECT_NEAR(sim.rate_cache()->chunk_rate(0, c), sim.enabled_rate_in_chunk(p, c),
                1e-9 * (1.0 + sim.enabled_rate_in_chunk(p, c)));
  }
}

TEST(RateCache, InvariantHoldsAcrossCyclingPartitions) {
  const ReactionModel m = ads_des_model(1.5, 0.5);
  const Lattice lat(6, 6);
  const Partition p0 = Partition::blocks(lat, 3, 3);
  const Partition p1 = Partition::blocks(lat, 3, 3, {1, 1});
  PndcaSimulator sim(m, Configuration(lat, 2, 0), {p0, p1}, 23,
                     ChunkPolicy::kRateWeighted);
  ASSERT_EQ(sim.rate_cache()->num_slots(), 2u);
  for (int step = 0; step < 200; ++step) {
    sim.mc_step();
    expect_counts_match_brute_force(*sim.rate_cache(), 0, p0, m, sim.configuration(),
                                    "slot 0");
    expect_counts_match_brute_force(*sim.rate_cache(), 1, p1, m, sim.configuration(),
                                    "slot 1");
  }
}

TEST(RateCache, InvariantHoldsUnderThreadedEngine) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(15, 15);
  const Partition p = Partition::linear_form(lat, 1, 3, 5);
  ParallelPndcaEngine sim(zgb.model, Configuration(lat, 3, zgb.vacant), {p}, 29, 4,
                          ChunkPolicy::kRateWeighted);
  for (int step = 0; step < 300; ++step) {
    sim.mc_step();
    if (step % 10 == 0) {
      expect_counts_match_brute_force(*sim.rate_cache(), 0, p, zgb.model,
                                      sim.configuration(), "threaded step");
    }
  }
  expect_counts_match_brute_force(*sim.rate_cache(), 0, p, zgb.model,
                                  sim.configuration(), "threaded end");
}

TEST(RateCache, OtherPoliciesDoNotPayForTheCache) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  PndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant),
                     {Partition::linear_form(lat, 1, 3, 5)}, 31,
                     ChunkPolicy::kRandomOrder);
  EXPECT_EQ(sim.rate_cache(), nullptr);
}

TEST(RateCache, RebuildRecoversFromExternalWrites) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const Lattice lat(6, 6);
  Configuration cfg(lat, 2, 0);
  EnabledRateCache cache(m, cfg);
  const Partition p = Partition::blocks(lat, 3, 3);
  cache.add_partition(p);
  // Mutate without refreshing, then rebuild.
  for (SiteIndex s = 0; s < cfg.size(); s += 2) cfg.set(s, 1);
  cache.rebuild(cfg);
  expect_counts_match_brute_force(cache, 0, p, m, cfg, "rebuild");
}

TEST(LPndcaRateWeighted, InvariantAndEquilibrium) {
  // With k_a == k_d every site always carries exactly one enabled reaction
  // at a common rate, so rate-weighted chunk selection coincides with the
  // size-proportional draw and the independent-site equilibrium must hold.
  const ReactionModel m = ads_des_model(1.0, 1.0);
  const Lattice lat(20, 20);
  const Partition p = Partition::linear_form(lat, 1, 3, 5);
  LPndcaSimulator sim(m, Configuration(lat, 2, 0), p, 41, 16, TimeMode::kStochastic,
                      ChunkWeighting::kRateWeighted);
  ASSERT_NE(sim.rate_cache(), nullptr);
  sim.advance_to(25.0);
  expect_counts_match_brute_force(*sim.rate_cache(), 0, p, m, sim.configuration(),
                                  "L-PNDCA");
  double avg = 0;
  const int samples = 60;
  for (int i = 0; i < samples; ++i) {
    sim.mc_step();
    avg += sim.configuration().coverage(1);
  }
  EXPECT_NEAR(avg / samples, 0.5, 0.03);
  expect_counts_match_brute_force(*sim.rate_cache(), 0, p, m, sim.configuration(),
                                  "L-PNDCA end");
}

TEST(TPndcaRateWeighted, InvariantAcrossSubsetSlots) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  const Lattice lat(12, 12);
  const std::vector<TypeSubset> subsets = make_type_partition(lat, zgb.model);
  TPndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant), subsets, 43, 0,
                      ChunkWeighting::kRateWeighted);
  ASSERT_NE(sim.rate_cache(), nullptr);
  ASSERT_EQ(sim.rate_cache()->num_slots(), subsets.size());
  for (int step = 0; step < 500; ++step) sim.mc_step();
  EXPECT_GT(sim.counters().executed, 0u);
  for (std::size_t j = 0; j < subsets.size(); ++j) {
    expect_counts_match_brute_force(*sim.rate_cache(), j, sim.subsets()[j].chunks,
                                    zgb.model, sim.configuration(), "TPNDCA slot");
  }
  // Maintained species counts survive the cached path too.
  std::vector<std::uint64_t> recount(3, 0);
  for (SiteIndex s = 0; s < sim.configuration().size(); ++s) {
    ++recount[sim.configuration().get(s)];
  }
  for (Species s = 0; s < 3; ++s) EXPECT_EQ(sim.configuration().count(s), recount[s]);
}

}  // namespace
}  // namespace casurf
