#include "model/reaction_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "rng/xoshiro.hpp"

namespace casurf {
namespace {

ReactionModel two_reaction_model() {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", 3.0, {exact({0, 0}, 1, 0)}));
  return m;
}

TEST(ReactionModel, TotalRateAccumulates) {
  const ReactionModel m = two_reaction_model();
  EXPECT_DOUBLE_EQ(m.total_rate(), 4.0);
  EXPECT_EQ(m.num_reactions(), 2u);
}

TEST(ReactionModel, ReactionAccess) {
  const ReactionModel m = two_reaction_model();
  EXPECT_EQ(m.reaction(0).name(), "ads");
  EXPECT_EQ(m.reaction(1).name(), "des");
  EXPECT_THROW((void)m.reaction(2), std::out_of_range);
}

TEST(ReactionModel, MaxRadius) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("one", 1.0, {exact({0, 0}, 0, 1)}));
  EXPECT_EQ(m.max_radius_l1(), 0);
  m.add(ReactionType("pair", 1.0, {exact({0, 0}, 1, 0), exact({0, 1}, 0, 1)}));
  EXPECT_EQ(m.max_radius_l1(), 1);
  m.add(ReactionType("far", 1.0, {exact({0, 0}, 1, 0), exact({2, 1}, 0, 1)}));
  EXPECT_EQ(m.max_radius_l1(), 3);
}

TEST(ReactionModel, SampleTypeProportionalToRates) {
  const ReactionModel m = two_reaction_model();  // rates 1 : 3
  Xoshiro256 rng(5);
  int counts[2] = {0, 0};
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[m.sample_type(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.005);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.75, 0.005);
}

TEST(ReactionModel, SampleTypeAfterLateAdd) {
  // The alias table must rebuild after add() — sampling then add() then
  // sampling again exercises the lazy invalidation.
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("a", 1.0, {exact({0, 0}, 0, 1)}));
  Xoshiro256 rng(6);
  EXPECT_EQ(m.sample_type(rng), 0u);
  m.add(ReactionType("b", 99.0, {exact({0, 0}, 1, 0)}));
  int hits_b = 0;
  for (int i = 0; i < 1000; ++i) hits_b += m.sample_type(rng) == 1 ? 1 : 0;
  EXPECT_GT(hits_b, 950);
}

TEST(ReactionModel, ValidateAcceptsGoodModel) {
  const ReactionModel m = two_reaction_model();
  EXPECT_NO_THROW(m.validate());
}

TEST(ReactionModel, ValidateRejectsEmptyModel) {
  const ReactionModel m(SpeciesSet({"*"}));
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(ReactionModel, ValidateRejectsUnknownSpeciesInMask) {
  ReactionModel m(SpeciesSet({"*", "A"}));  // species 0, 1 only
  m.add(ReactionType("bad_src", 1.0, {Transform{{0, 0}, species_bit(5), 0}}));
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(ReactionModel, ValidateRejectsOutOfRangeTarget) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("bad_tg", 1.0, {exact({0, 0}, 0, 7)}));
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(ReactionModel, EmptySpeciesSetThrows) {
  EXPECT_THROW(ReactionModel(SpeciesSet{}), std::invalid_argument);
}

TEST(ArrheniusRate, MatchesFormula) {
  // k = nu * exp(-E / kB T); at E = 0 the rate is the prefactor.
  EXPECT_DOUBLE_EQ(arrhenius_rate(1e13, 0.0, 300.0), 1e13);
  // Higher barrier -> smaller rate; higher T -> larger rate.
  const double k1 = arrhenius_rate(1e13, 0.5, 300.0);
  const double k2 = arrhenius_rate(1e13, 1.0, 300.0);
  const double k3 = arrhenius_rate(1e13, 0.5, 600.0);
  EXPECT_LT(k2, k1);
  EXPECT_GT(k3, k1);
  // Spot value: exp(-0.5 / (8.617e-5 * 300)) ~ 4e-9.
  EXPECT_NEAR(k1 / 1e13, 4.0e-9, 1.5e-9);
}

TEST(ArrheniusRate, RejectsBadInputs) {
  EXPECT_THROW((void)arrhenius_rate(0.0, 0.5, 300.0), std::invalid_argument);
  EXPECT_THROW((void)arrhenius_rate(1e13, 0.5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace casurf
