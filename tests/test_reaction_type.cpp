#include "model/reaction_type.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace casurf {
namespace {

// Species convention for these tests: 0 = vacant, 1 = A, 2 = B.

TEST(ReactionType, ConstructionValidatesAnchor) {
  EXPECT_THROW(ReactionType("no_anchor", 1.0, {exact({1, 0}, 0, 1)}),
               std::invalid_argument);
  EXPECT_NO_THROW(ReactionType("ok", 1.0, {exact({0, 0}, 0, 1)}));
}

TEST(ReactionType, ConstructionValidatesRate) {
  EXPECT_THROW(ReactionType("zero", 0.0, {exact({0, 0}, 0, 1)}), std::invalid_argument);
  EXPECT_THROW(ReactionType("neg", -1.0, {exact({0, 0}, 0, 1)}), std::invalid_argument);
}

TEST(ReactionType, ConstructionRejectsEmptyAndDuplicates) {
  EXPECT_THROW(ReactionType("empty", 1.0, {}), std::invalid_argument);
  EXPECT_THROW(ReactionType("dup", 1.0,
                            {exact({0, 0}, 0, 1), exact({0, 0}, 1, 0)}),
               std::invalid_argument);
  EXPECT_THROW(ReactionType("zero_mask", 1.0, {Transform{{0, 0}, 0, 1}}),
               std::invalid_argument);
}

TEST(ReactionType, NeighborhoodAndRadius) {
  const ReactionType rt("pair", 1.0, {exact({0, 0}, 1, 0), exact({2, -1}, 0, 1)});
  ASSERT_EQ(rt.neighborhood().size(), 2u);
  EXPECT_EQ(rt.neighborhood()[0], (Vec2{0, 0}));
  EXPECT_EQ(rt.neighborhood()[1], (Vec2{2, -1}));
  EXPECT_EQ(rt.radius_l1(), 3);
}

TEST(ReactionType, EnabledExactMatch) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  const ReactionType ads("ads", 1.0, {exact({0, 0}, 0, 1)});
  EXPECT_TRUE(ads.enabled(cfg, 0));
  cfg.set(SiteIndex{0}, 1);
  EXPECT_FALSE(ads.enabled(cfg, 0));
}

TEST(ReactionType, EnabledPairPattern) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  const ReactionType pair("pair", 1.0, {exact({0, 0}, 1, 0), exact({1, 0}, 2, 0)});
  const SiteIndex s = cfg.lattice().index({1, 1});
  EXPECT_FALSE(pair.enabled(cfg, s));
  cfg.set(Vec2{1, 1}, 1);
  EXPECT_FALSE(pair.enabled(cfg, s));
  cfg.set(Vec2{2, 1}, 2);
  EXPECT_TRUE(pair.enabled(cfg, s));
}

TEST(ReactionType, EnabledWildcardMask) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  const SpeciesMask any_particle = species_bit(1) | species_bit(2);
  const ReactionType rt("wild", 1.0,
                        {exact({0, 0}, 0, 1), require({1, 0}, any_particle)});
  EXPECT_FALSE(rt.enabled(cfg, 0));  // neighbor vacant
  cfg.set(Vec2{1, 0}, 1);
  EXPECT_TRUE(rt.enabled(cfg, 0));
  cfg.set(Vec2{1, 0}, 2);
  EXPECT_TRUE(rt.enabled(cfg, 0));
}

TEST(ReactionType, ExecuteWritesTargets) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  cfg.set(Vec2{1, 1}, 1);
  cfg.set(Vec2{2, 1}, 2);
  const ReactionType swap("consume", 1.0,
                          {exact({0, 0}, 1, 0), exact({1, 0}, 2, 0)});
  const SiteIndex s = cfg.lattice().index({1, 1});
  ASSERT_TRUE(swap.enabled(cfg, s));
  swap.execute(cfg, s);
  EXPECT_EQ(cfg.get(Vec2{1, 1}), 0);
  EXPECT_EQ(cfg.get(Vec2{2, 1}), 0);
}

TEST(ReactionType, ExecuteKeepLeavesSiteUntouched) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  cfg.set(Vec2{1, 0}, 2);
  const ReactionType rt("keep", 1.0,
                        {exact({0, 0}, 0, 1), require({1, 0}, species_bit(2))});
  rt.execute(cfg, 0);
  EXPECT_EQ(cfg.get(SiteIndex{0}), 1);
  EXPECT_EQ(cfg.get(Vec2{1, 0}), 2);  // precondition-only site unchanged
}

TEST(ReactionType, ExecuteWrapsAroundBoundary) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  cfg.set(Vec2{3, 0}, 1);
  const ReactionType hop("hop", 1.0, {exact({0, 0}, 1, 0), exact({1, 0}, 0, 1)});
  const SiteIndex s = cfg.lattice().index({3, 0});
  ASSERT_TRUE(hop.enabled(cfg, s));
  hop.execute(cfg, s);
  EXPECT_EQ(cfg.get(Vec2{3, 0}), 0);
  EXPECT_EQ(cfg.get(Vec2{0, 0}), 1);  // wrapped
}

TEST(ReactionType, ExecuteRawAccumulatesDeltas) {
  Configuration cfg(Lattice(4, 4), 3, 0);
  cfg.set(Vec2{0, 0}, 1);
  cfg.set(Vec2{1, 0}, 2);
  const ReactionType rt("consume", 1.0,
                        {exact({0, 0}, 1, 0), exact({1, 0}, 2, 0)});
  std::array<std::int64_t, 3> delta{};
  rt.execute_raw(cfg, 0, delta.data());
  EXPECT_EQ(delta[0], 2);
  EXPECT_EQ(delta[1], -1);
  EXPECT_EQ(delta[2], -1);
  // Raw path did not touch counts yet.
  EXPECT_EQ(cfg.count(1), 1u);
  cfg.apply_count_delta(delta.data());
  EXPECT_EQ(cfg.count(0), 16u);
  EXPECT_EQ(cfg.count(1), 0u);
  EXPECT_EQ(cfg.count(2), 0u);
}

TEST(ReactionType, ExecuteAndExecuteRawAgree) {
  const ReactionType rt("pair", 1.0, {exact({0, 0}, 1, 2), exact({0, 1}, 0, 1)});
  Configuration a(Lattice(5, 5), 3, 0);
  a.set(Vec2{2, 2}, 1);
  Configuration b = a;
  const SiteIndex s = a.lattice().index({2, 2});
  rt.execute(a, s);
  std::array<std::int64_t, 3> delta{};
  rt.execute_raw(b, s, delta.data());
  b.apply_count_delta(delta.data());
  EXPECT_EQ(a, b);
  for (Species sp = 0; sp < 3; ++sp) EXPECT_EQ(a.count(sp), b.count(sp));
}

TEST(ReactionType, WritesOffset) {
  const ReactionType rt("mixed", 1.0,
                        {exact({0, 0}, 1, 0), require({1, 0}, species_bit(2))});
  EXPECT_TRUE(rt.writes_offset({0, 0}));
  EXPECT_FALSE(rt.writes_offset({1, 0}));   // precondition only
  EXPECT_FALSE(rt.writes_offset({0, 1}));   // not in pattern
}

TEST(ReactionType, TranslationInvarianceOfEnabledness) {
  // enabled(s + t) on a translated configuration == enabled(s) on the
  // original: the paper's translation-invariance property.
  const ReactionType rt("pair", 1.0, {exact({0, 0}, 1, 0), exact({1, 1}, 2, 0)});
  const Lattice lat(6, 6);
  Configuration cfg(lat, 3, 0);
  cfg.set(Vec2{2, 2}, 1);
  cfg.set(Vec2{3, 3}, 2);
  const Vec2 t{3, 2};
  Configuration moved(lat, 3, 0);
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    moved.set(lat.wrap(lat.coord(s) + t), cfg.get(s));
  }
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    const SiteIndex st = lat.index(lat.wrap(lat.coord(s) + t));
    EXPECT_EQ(rt.enabled(cfg, s), rt.enabled(moved, st));
  }
}

}  // namespace
}  // namespace casurf
