#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "rng/counter_rng.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro.hpp"
#include "stats/ks.hpp"

namespace casurf {
namespace {

TEST(SplitMix64, ReproducibleSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Mix64, Bijectiveish) {
  // Distinct small inputs must give distinct outputs (mix64 is a bijection).
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 4096; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 4096u);
}

TEST(Xoshiro256, Reproducible) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformMeanAndVariance) {
  Xoshiro256 rng(99);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double u = uniform01(rng);
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Xoshiro256, Uniform01PassesKs) {
  Xoshiro256 rng(1234);
  std::vector<double> samples(5000);
  for (double& s : samples) s = uniform01(rng);
  const auto r = stats::ks_uniform01(samples);
  EXPECT_FALSE(r.reject(0.001)) << "D=" << r.statistic << " p=" << r.p_value;
}

TEST(Xoshiro256, LongJumpDecorrelates) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(UniformBelow, InRangeAndCoversAll) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = uniform_below(rng, 10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Exponential, MeanMatchesRate) {
  Xoshiro256 rng(17);
  const double rate = 4.0;
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += exponential(rng, rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Exponential, PassesKsAgainstTheory) {
  Xoshiro256 rng(18);
  std::vector<double> samples(4000);
  for (double& s : samples) s = exponential(rng, 2.5);
  const auto r = stats::ks_exponential(samples, 2.5);
  EXPECT_FALSE(r.reject(0.001)) << "D=" << r.statistic;
}

TEST(Exponential, ZeroUniformGuard) {
  EXPECT_TRUE(std::isfinite(exponential_from_u(0.0, 1.0)));
  EXPECT_GT(exponential_from_u(0.0, 1.0), 0.0);
}

TEST(CounterRng, StreamIsPureFunctionOfSeedAndKey) {
  CounterRng a(11, 22), b(11, 22);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(CounterRng, DifferentKeysDecorrelated) {
  CounterRng a(11, 1), b(11, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, DifferentSeedsDecorrelated) {
  CounterRng a(1, 7), b(2, 7);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, NextBelowZeroThrows) {
  // Regression: next_below(0) used to compute bound - 1 == UINT64_MAX,
  // making `r & mask` always pass the rejection test and "uniformly below
  // zero" silently return arbitrary 64-bit values.
  CounterRng rng(5, 6);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
  // The throw must not consume a draw: the stream continues unperturbed.
  CounterRng witness(5, 6);
  EXPECT_NO_THROW({
    CounterRng probe(5, 6);
    try {
      probe.next_below(0);
    } catch (const std::invalid_argument&) {
    }
    EXPECT_EQ(probe.next(), witness.next());
  });
}

TEST(CounterRng, ClosedFormMatchesStatefulStream) {
  // The batched lane fill replays streams through the static closed form;
  // it must agree with the stateful object draw for draw.
  const std::uint64_t seed = 0xfeedULL;
  const std::uint64_t key = CounterRng::key(42, 1337);
  CounterRng rng(seed, key);
  const std::uint64_t base = CounterRng::stream_base(seed, key);
  for (std::uint64_t n = 1; n <= 16; ++n) {
    EXPECT_EQ(rng.next(), CounterRng::nth(base, n)) << n;
  }
  CounterRng drng(seed, key);
  for (std::uint64_t n = 1; n <= 16; ++n) {
    EXPECT_EQ(drng.next_double(), CounterRng::to_unit(CounterRng::nth(base, n)));
  }
}

TEST(CounterRng, DoubleInUnitInterval) {
  CounterRng rng(3, 4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, UniformityAcrossKeys) {
  // First draw of many streams must itself be uniform — this is exactly the
  // per-site usage pattern of the PNDCA engine.
  std::vector<double> samples;
  samples.reserve(4000);
  for (std::uint64_t key = 0; key < 4000; ++key) {
    CounterRng rng(12345, CounterRng::key(7, key));
    samples.push_back(rng.next_double());
  }
  const auto r = stats::ks_uniform01(samples);
  EXPECT_FALSE(r.reject(0.001)) << "D=" << r.statistic;
}

TEST(CounterRng, KeySaltSeparatesStreams) {
  CounterRng a(9, CounterRng::key(1, 2, 0));
  CounterRng b(9, CounterRng::key(1, 2, 1));
  EXPECT_NE(a.next(), b.next());
}

TEST(CounterRng, KeySaltHighBitSeparatesStreams) {
  // Regression: the key used to fold in `salt << 1`, which drops bit 63 —
  // salts s and s | 2^63 produced the same stream.
  CounterRng a(9, CounterRng::key(1, 2, 5));
  CounterRng b(9, CounterRng::key(1, 2, 5 | (1ULL << 63)));
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, DefaultSaltKeysUnchanged) {
  // mix64(0) == 0, so salt-0 keys — the library-wide default — kept their
  // pre-fix values and golden trajectories are unaffected.
  EXPECT_EQ(mix64(0), 0u);
  EXPECT_EQ(CounterRng::key(3, 17, 0), CounterRng::key(3, 17));
}

TEST(AliasTable, SingleEntry) {
  const AliasTable t({3.0});
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, MatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const AliasTable t(weights);
  Xoshiro256 rng(2);
  std::vector<int> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[t.sample(rng)];
  for (std::size_t i = 0; i < 4; ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(counts[i] / static_cast<double>(n), expected, 0.005) << "i=" << i;
  }
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const AliasTable t({1.0, 0.0, 1.0});
  Xoshiro256 rng(4);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(t.sample(rng), 1u);
}

TEST(AliasTable, InvalidInputsThrow) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({-1.0, 2.0}), std::invalid_argument);
}

TEST(SampleCumulative, PicksCorrectBand) {
  const std::vector<double> cum = {1.0, 3.0, 6.0};
  EXPECT_EQ(sample_cumulative(cum, 0.0), 0u);
  EXPECT_EQ(sample_cumulative(cum, 0.166), 0u);
  EXPECT_EQ(sample_cumulative(cum, 0.17), 1u);
  EXPECT_EQ(sample_cumulative(cum, 0.49), 1u);
  EXPECT_EQ(sample_cumulative(cum, 0.51), 2u);
  EXPECT_EQ(sample_cumulative(cum, 0.999), 2u);
}

TEST(SampleCumulative, ZeroWidthBandsNeverSelected) {
  // Zero-weight entries duplicate their predecessor's cumulative value.
  // When the target reaches the top of the table (u == 1.0, or rounding on
  // subnormal totals) the search falls through to the last entry regardless
  // of its width; the walk-back must land on the last nonzero band.
  const std::vector<double> trailing = {4.0, 4.0};
  EXPECT_EQ(sample_cumulative(trailing, 1.0), 0u);
  EXPECT_EQ(sample_cumulative(trailing, std::nextafter(1.0, 0.0)), 0u);

  const std::vector<double> cum = {1.0, 3.0, 3.0, 3.0};
  EXPECT_EQ(sample_cumulative(cum, 1.0), 1u);
  for (int i = 0; i <= 32; ++i) {
    const std::size_t band = sample_cumulative(cum, i / 32.0);
    EXPECT_LE(band, 1u) << "u = " << i / 32.0;
  }
}

TEST(SampleCumulative, EmptyThrows) {
  EXPECT_THROW((void)sample_cumulative({}, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace casurf
