#include "dmc/rsm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace casurf {
namespace {

/// Independent-site adsorption/desorption: A adsorbs at k_a, desorbs at
/// k_d. Sites are uncoupled, so the exact equilibrium coverage is
/// k_a / (k_a + k_d) — an analytic target every kinetics test can use.
ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

TEST(Rsm, SameSeedSameTrajectory) {
  const ReactionModel m = ads_des_model(1.0, 0.5);
  RsmSimulator a(m, Configuration(Lattice(8, 8), 2, 0), 42);
  RsmSimulator b(m, Configuration(Lattice(8, 8), 2, 0), 42);
  for (int i = 0; i < 20; ++i) {
    a.mc_step();
    b.mc_step();
  }
  EXPECT_EQ(a.configuration(), b.configuration());
  EXPECT_DOUBLE_EQ(a.time(), b.time());
  EXPECT_EQ(a.counters().executed, b.counters().executed);
}

TEST(Rsm, DifferentSeedsDiverge) {
  const ReactionModel m = ads_des_model(1.0, 0.5);
  RsmSimulator a(m, Configuration(Lattice(8, 8), 2, 0), 1);
  RsmSimulator b(m, Configuration(Lattice(8, 8), 2, 0), 2);
  for (int i = 0; i < 20; ++i) {
    a.mc_step();
    b.mc_step();
  }
  EXPECT_FALSE(a.configuration() == b.configuration());
}

TEST(Rsm, OneMcStepIsNTrials) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  RsmSimulator sim(m, Configuration(Lattice(6, 7), 2, 0), 3);
  sim.mc_step();
  EXPECT_EQ(sim.counters().trials, 42u);
  EXPECT_EQ(sim.counters().steps, 1u);
  sim.mc_step();
  EXPECT_EQ(sim.counters().trials, 84u);
}

TEST(Rsm, DeterministicTimeModeIsExact) {
  const ReactionModel m = ads_des_model(1.0, 3.0);  // K = 4
  RsmSimulator sim(m, Configuration(Lattice(10, 10), 2, 0), 3,
                   TimeMode::kDeterministic);
  sim.mc_step();  // 100 trials, each 1 / (100 * 4)
  EXPECT_NEAR(sim.time(), 0.25, 1e-12);
}

TEST(Rsm, StochasticTimeMeanMatchesDiscretization) {
  const ReactionModel m = ads_des_model(2.0, 2.0);  // K = 4
  RsmSimulator sim(m, Configuration(Lattice(16, 16), 2, 0), 4);
  for (int i = 0; i < 100; ++i) sim.mc_step();
  // 100 MC steps => expected time 100 / K = 25, relative sd ~ 1/sqrt(NK t).
  EXPECT_NEAR(sim.time(), 25.0, 1.5);
}

TEST(Rsm, EquilibriumCoverage) {
  const double ka = 1.0, kd = 0.25;
  const ReactionModel m = ads_des_model(ka, kd);
  RsmSimulator sim(m, Configuration(Lattice(32, 32), 2, 0), 5);
  sim.advance_to(40.0);  // >> 1/(ka+kd): fully relaxed
  double avg = 0;
  const int samples = 50;
  for (int i = 0; i < samples; ++i) {
    sim.mc_step();
    avg += sim.configuration().coverage(1);
  }
  avg /= samples;
  EXPECT_NEAR(avg, ka / (ka + kd), 0.02);
}

TEST(Rsm, ExecutedPerTypeFollowsRates) {
  // Two no-op reactions (A -> A) at rates 3 and 1 are always enabled, so
  // execution counts must split 3 : 1 — Segers' second criterion.
  ReactionModel m(SpeciesSet({"A"}));
  m.add(ReactionType("r3", 3.0, {exact({0, 0}, 0, 0)}));
  m.add(ReactionType("r1", 1.0, {exact({0, 0}, 0, 0)}));
  RsmSimulator sim(m, Configuration(Lattice(10, 10), 1, 0), 6);
  for (int i = 0; i < 400; ++i) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  const double frac = static_cast<double>(per[0]) /
                      static_cast<double>(per[0] + per[1]);
  EXPECT_NEAR(frac, 0.75, 0.01);
}

TEST(Rsm, AcceptanceReflectsEnabledFraction) {
  // All sites vacant, only adsorption: every trial that draws "ads" fires.
  const ReactionModel m = ads_des_model(1.0, 1.0);
  RsmSimulator sim(m, Configuration(Lattice(16, 16), 2, 0), 7);
  sim.trial();
  EXPECT_LE(sim.counters().executed, sim.counters().trials);
}

TEST(Rsm, AdvanceToReachesTarget) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  RsmSimulator sim(m, Configuration(Lattice(8, 8), 2, 0), 8);
  sim.advance_to(3.0);
  EXPECT_GE(sim.time(), 3.0);
  // Overshoot bounded by roughly one MC step (1/K = 0.5) of slack.
  EXPECT_LT(sim.time(), 3.0 + 1.5);
}

TEST(Rsm, AbsorbingStateJumpsTime) {
  // Irreversible adsorption: once the lattice is full nothing is enabled;
  // time trials still tick (RSM trials never stop), so the state is not
  // absorbing for advance_to — but coverage saturates at 1.
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));
  RsmSimulator sim(m, Configuration(Lattice(8, 8), 2, 0), 9);
  sim.advance_to(200.0);
  EXPECT_DOUBLE_EQ(sim.configuration().coverage(1), 1.0);
  EXPECT_GE(sim.time(), 200.0);
}

TEST(Rsm, NameAndModelAccessors) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  RsmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 1);
  EXPECT_EQ(sim.name(), "RSM");
  EXPECT_EQ(&sim.model(), &m);
}

}  // namespace
}  // namespace casurf
