// Regression tests for the grid-sampling exactness of advance_to: the
// exact DMC methods must land on requested times EXACTLY (never executing
// an event that fires past the target), because the state observed at t
// would otherwise include future events — a bias the Master Equation
// comparison caught on small lattices.

#include <gtest/gtest.h>

#include "core/observer.hpp"
#include "dmc/frm.hpp"
#include "dmc/rsm.hpp"
#include "dmc/vssm.hpp"
#include "me/master_equation.hpp"
#include "models/zgb.hpp"
#include "stats/coverage.hpp"
#include "stats/ensemble.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

template <class Sim>
void expect_exact_grid(Sim& sim) {
  for (int i = 1; i <= 20; ++i) {
    const double target = 0.37 * i;
    sim.advance_to(target);
    ASSERT_DOUBLE_EQ(sim.time(), target) << "grid point " << i;
  }
}

TEST(SamplingExactness, RsmLandsOnGridExactly) {
  const ReactionModel m = ads_des_model(1.0, 0.5);
  RsmSimulator sim(m, Configuration(Lattice(6, 6), 2, 0), 1);
  expect_exact_grid(sim);
}

TEST(SamplingExactness, VssmLandsOnGridExactly) {
  const ReactionModel m = ads_des_model(1.0, 0.5);
  VssmSimulator sim(m, Configuration(Lattice(6, 6), 2, 0), 2);
  expect_exact_grid(sim);
}

TEST(SamplingExactness, FrmLandsOnGridExactly) {
  const ReactionModel m = ads_des_model(1.0, 0.5);
  FrmSimulator sim(m, Configuration(Lattice(6, 6), 2, 0), 3);
  expect_exact_grid(sim);
}

TEST(SamplingExactness, FrmKeepsFutureEventsScheduled) {
  // Stopping before the next event must not lose it: the event fires
  // when the clock finally passes it.
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 0.001, {exact({0, 0}, 0, 1)}));  // very slow
  FrmSimulator sim(m, Configuration(Lattice(2, 2), 2, 0), 4);
  sim.advance_to(0.01);  // almost surely before any event
  EXPECT_DOUBLE_EQ(sim.time(), 0.01);
  sim.advance_to(1e5);  // all four sites must eventually fill
  EXPECT_DOUBLE_EQ(sim.configuration().coverage(1), 1.0);
  EXPECT_EQ(sim.counters().executed, 4u);
}

TEST(SamplingExactness, TransientCoverageMatchesAnalyticSolution) {
  // The fix's payoff: the *transient* Langmuir curve sampled on a grid
  // matches theta(t) = theta_inf (1 - exp(-(ka+kd) t)) without the
  // one-event-late bias (visible on a small lattice).
  const double ka = 1.5, kd = 0.5;
  const ReactionModel m = ads_des_model(ka, kd);
  const Configuration initial(Lattice(4, 4), 2, 0);
  for (const double t : {0.2, 0.6, 1.2}) {
    const auto result = run_ensemble(
        [&](std::uint64_t seed) {
          return std::make_unique<VssmSimulator>(m, initial, seed);
        },
        [](const Simulator& sim) { return sim.configuration().coverage(1); },
        4000, t, t, 2, 10);
    const double expected = ka / (ka + kd) * (1.0 - std::exp(-(ka + kd) * t));
    EXPECT_NEAR(result.mean.values().back(), expected, 0.012) << "t=" << t;
  }
}

TEST(SamplingExactness, RunSampledGridIsExactForEventDrivenMethods) {
  auto zgb = models::make_zgb();
  VssmSimulator sim(zgb.model, Configuration(Lattice(8, 8), 3, zgb.vacant), 5);
  CoverageRecorder rec({zgb.o});
  run_sampled(sim, 4.0, 0.5, rec);
  const TimeSeries& ts = rec.series(zgb.o);
  ASSERT_EQ(ts.size(), 9u);  // 0, 0.5, ..., 4.0 with no overshoot drift
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(ts.time(i), 0.5 * static_cast<double>(i));
  }
}

}  // namespace
}  // namespace casurf
