// End-to-end serving: a soak of hundreds of overlapping jobs around a
// long checkpointing run, worker-crash recovery with a byte-identical
// trajectory, and the real casurf_serve binary draining on SIGTERM.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"
#include "serve/daemon.hpp"
#include "serve/spawn.hpp"

namespace casurf::serve {
namespace {

namespace fs = std::filesystem;
using obs::json::Value;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = testing::TempDir() + "/serve_e2e_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  fs::create_directories(dir);
  return dir;
}

std::string wait_terminal(Daemon& daemon, std::uint64_t id, int timeout_s) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/jobs/" + std::to_string(id);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(timeout_s);
  for (;;) {
    const std::string state =
        Value::parse(daemon.handle(req).body).at("state").as_string();
    if (state == "done" || state == "failed" || state == "stopped") {
      return state;
    }
    if (std::chrono::steady_clock::now() > deadline) return state;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

HttpResponse api(Daemon& daemon, const std::string& method,
                 const std::string& target, const std::string& body = {}) {
  HttpRequest req;
  req.method = method;
  req.target = target;
  req.body = body;
  return daemon.handle(req);
}

// ── Soak: many short jobs around one long checkpointing run ─────────────

TEST(ServeE2E, SoakHundredsOfJobsAroundALongCheckpointingRun) {
  DaemonOptions opt;
  opt.runner = CASURF_RUN_PATH;
  opt.data_dir = fresh_dir("soak");
  opt.slots = 4;
  opt.queue_cap = 512;
  opt.tenant_cap = 512;
  Daemon daemon(opt);

  // The long Pt(100) oscillator keeps checkpointing throughout the churn.
  const HttpResponse long_resp = api(
      daemon, "POST", "/jobs",
      R"({"model":"pt100","algorithm":"ndca","width":48,"height":48,)"
      R"("t_end":1000000,"dt":1,"checkpoint_every":1,"priority":9,)"
      R"("tenant":"longrun"})");
  ASSERT_EQ(long_resp.status, 202) << long_resp.body;
  const std::uint64_t long_id = Value::parse(long_resp.body).at("id").as_u64();

  constexpr int kJobs = 200;
  std::vector<std::uint64_t> ids;
  ids.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    // Vary seed and priority so the scheduler actually reorders work.
    const std::string body =
        R"({"model":"zgb","algorithm":"rsm","width":12,"height":12,)"
        R"("t_end":1,"dt":1,"seed":)" +
        std::to_string(i + 1) + R"(,"priority":)" + std::to_string(i % 10) +
        "}";
    const HttpResponse resp = api(daemon, "POST", "/jobs", body);
    ASSERT_EQ(resp.status, 202) << "job " << i << ": " << resp.body;
    ids.push_back(Value::parse(resp.body).at("id").as_u64());
  }

  for (const std::uint64_t id : ids) {
    EXPECT_EQ(wait_terminal(daemon, id, 540), "done")
        << api(daemon, "GET", "/jobs/" + std::to_string(id)).body;
  }

  // The long job survived the churn, is still running, and has been
  // checkpointing the whole time.
  const HttpResponse long_status =
      api(daemon, "GET", "/jobs/" + std::to_string(long_id));
  EXPECT_EQ(Value::parse(long_status.body).at("state").as_string(), "running");
  EXPECT_TRUE(fs::exists(fs::path(opt.data_dir) /
                         ("job-" + std::to_string(long_id)) / kJobCheckpoint));

  EXPECT_EQ(api(daemon, "POST", "/jobs/" + std::to_string(long_id) + "/stop")
                .status,
            202);
  EXPECT_EQ(wait_terminal(daemon, long_id, 120), "stopped");

  const Value stats = Value::parse(api(daemon, "GET", "/stats").body);
  EXPECT_EQ(stats.at("done").as_u64(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.at("failed").as_u64(), 0u);
}

// ── Worker-crash recovery: byte-identical trajectory ────────────────────

#ifndef CASURF_NO_FAILPOINTS
TEST(ServeE2E, KilledWorkerRecoversWithByteIdenticalCsv) {
  DaemonOptions opt;
  opt.runner = CASURF_RUN_PATH;
  opt.data_dir = fresh_dir("kill");
  Daemon daemon(opt);

  // Same physics twice; the victim's worker is SIGKILLed (a real kill(2),
  // not an exception) after the 3rd and 6th checkpoints and must restart
  // from the chain each time.
  const char* base =
      R"("model":"zgb","algorithm":"vssm","width":24,"height":24,)"
      R"("t_end":8,"dt":1,"seed":4242)";
  const HttpResponse clean_resp =
      api(daemon, "POST", "/jobs", std::string("{") + base + "}");
  const HttpResponse victim_resp = api(
      daemon, "POST", "/jobs",
      std::string("{") + base + R"(,"retries":5,"failpoints":"run/kill=hit@3"})");
  ASSERT_EQ(clean_resp.status, 202) << clean_resp.body;
  ASSERT_EQ(victim_resp.status, 202) << victim_resp.body;
  const std::uint64_t clean = Value::parse(clean_resp.body).at("id").as_u64();
  const std::uint64_t victim = Value::parse(victim_resp.body).at("id").as_u64();

  ASSERT_EQ(wait_terminal(daemon, clean, 300), "done");
  ASSERT_EQ(wait_terminal(daemon, victim, 300), "done");

  const Value status =
      Value::parse(api(daemon, "GET", "/jobs/" + std::to_string(victim)).body);
  EXPECT_GE(status.at("restarts").as_u64(), 1u)
      << "failpoint never fired; the recovery path went untested";

  const HttpResponse clean_csv =
      api(daemon, "GET", "/jobs/" + std::to_string(clean) + "/csv");
  const HttpResponse victim_csv =
      api(daemon, "GET", "/jobs/" + std::to_string(victim) + "/csv");
  ASSERT_EQ(clean_csv.status, 200);
  ASSERT_EQ(victim_csv.status, 200);
  EXPECT_EQ(victim_csv.body, clean_csv.body)
      << "crash recovery must reproduce the uninterrupted trajectory byte "
         "for byte";
}
#endif  // CASURF_NO_FAILPOINTS

// ── The real binary: drain on SIGTERM ───────────────────────────────────

TEST(ServeE2E, ServeBinaryDrainsOnSigtermWithCheckpoints) {
  const std::string dir = fresh_dir("binary");
  const std::string port_file = dir + "/port";
  volatile pid_t child = 0;
  const pid_t pid = spawn_supervised(&child, nullptr, [&] {
    ::execl(CASURF_SERVE_PATH, CASURF_SERVE_PATH, "--runner", CASURF_RUN_PATH,
            "--data-dir", (dir + "/data").c_str(), "--port-file",
            port_file.c_str(), "--slots", "2", static_cast<char*>(nullptr));
    return 127;
  });
  ASSERT_GT(pid, 0);

  // Wait for the daemon to publish its port.
  std::uint16_t port = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (port == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    if (!fs::exists(port_file)) continue;
    try {
      port = static_cast<std::uint16_t>(std::stoi(io::read_file(port_file)));
    } catch (const std::exception&) {
    }
  }
  ASSERT_NE(port, 0) << "daemon never published its port";

  const HttpResponse resp = http_request(
      port, "POST", "/jobs",
      R"({"model":"pt100","algorithm":"ndca","width":32,"height":32,)"
      R"("t_end":1000000,"dt":1,"checkpoint_every":1})");
  ASSERT_EQ(resp.status, 202) << resp.body;
  const std::uint64_t id = Value::parse(resp.body).at("id").as_u64();
  const std::string job_dir = dir + "/data/job-" + std::to_string(id);

  // Let the worker reach its first checkpoint before pulling the plug.
  while (!fs::exists(job_dir + "/" + kJobCheckpoint) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(fs::exists(job_dir + "/" + kJobCheckpoint));

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0) << "drain must exit cleanly";

  // The drained job was checkpointed and marked stopped on disk, so a
  // restarted daemon would requeue nothing but a deliberate /start.
  const Value exit_marker =
      Value::parse(io::read_file(job_dir + "/exit.json"));
  EXPECT_EQ(exit_marker.at("state").as_string(), "stopped");
  EXPECT_EQ(exit_marker.at("exit_code").as_u64(), 143u);
  EXPECT_TRUE(fs::exists(job_dir + "/" + kJobCheckpoint));
}

}  // namespace
}  // namespace casurf::serve
