// JobSpec validation/compilation and the Daemon's API surface: lifecycle,
// priority order, quotas, backpressure, stop/start preemption, and
// daemon-restart recovery. Drives Daemon::handle() directly — the HTTP
// framing has its own suite in test_http.cpp.

#include "serve/daemon.hpp"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"
#include "serve/job.hpp"

namespace casurf::serve {
namespace {

namespace fs = std::filesystem;
using obs::json::Value;

JobSpec spec_of(const std::string& json) {
  return JobSpec::from_json(Value::parse(json));
}

// ── JobSpec ─────────────────────────────────────────────────────────────

TEST(JobSpec, MinimalSpecGetsDocumentedDefaults) {
  const JobSpec s = spec_of(R"({"model":"zgb"})");
  EXPECT_EQ(s.model, "zgb");
  EXPECT_EQ(s.tenant, "default");
  EXPECT_EQ(s.priority, 5);
  EXPECT_EQ(s.algorithm, "rsm");
  EXPECT_EQ(s.width, 64);
  EXPECT_EQ(s.height, 64);
  EXPECT_DOUBLE_EQ(s.t_end, 10);
  EXPECT_EQ(s.threads, 1u);
}

TEST(JobSpec, UnknownMembersAreRejectedNotIgnored) {
  // A typo'd knob must fail loudly, never silently run with the default.
  EXPECT_THROW(spec_of(R"({"model":"zgb","t_endd":5})"), std::runtime_error);
}

TEST(JobSpec, ExactlyOneModelSourceRequired) {
  EXPECT_THROW(spec_of(R"({})"), std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","model_text":"species CO"})"),
               std::runtime_error);
  EXPECT_NO_THROW(spec_of(R"({"model_text":"species CO on *"})"));
}

TEST(JobSpec, ValidationRejectsOutOfRangeKnobs) {
  EXPECT_THROW(spec_of(R"({"model":"bogus"})"), std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","algorithm":"magic"})"),
               std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","priority":10})"), std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","priority":-1})"), std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","tenant":"no spaces"})"),
               std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","t_end":0})"), std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","width":0})"), std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","y":1.5})"), std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","threads":0})"), std::runtime_error);
  EXPECT_THROW(spec_of(R"({"model":"zgb","heatmap_every":2})"),
               std::runtime_error);
  EXPECT_THROW(spec_of("[1,2,3]"), std::runtime_error);
}

TEST(JobSpec, ToArgvCompilesTheWorkerCommandLine) {
  JobSpec s = spec_of(
      R"({"model":"pt100","algorithm":"ndca","width":32,"height":48,)"
      R"("t_end":7.5,"seed":99,"fast_path":true,"heatmap":true,)"
      R"("failpoints":"run/kill=hit@3"})");
  const std::vector<std::string> argv = s.to_argv("/bin/runner", "/jobs/1", false);
  ASSERT_FALSE(argv.empty());
  EXPECT_EQ(argv[0], "/bin/runner");
  auto value_after = [&](const std::string& flag) -> std::string {
    for (std::size_t i = 1; i + 1 < argv.size(); ++i) {
      if (argv[i] == flag) return argv[i + 1];
    }
    return "<absent>";
  };
  auto has = [&](const std::string& flag) {
    return std::find(argv.begin(), argv.end(), flag) != argv.end();
  };
  EXPECT_EQ(value_after("--model"), "pt100");
  EXPECT_EQ(value_after("--algorithm"), "ndca");
  EXPECT_EQ(value_after("--size"), "32x48");
  EXPECT_EQ(value_after("--seed"), "99");
  EXPECT_EQ(value_after("--t-end"), "7.5");
  EXPECT_EQ(value_after("--checkpoint"), std::string("/jobs/1/") + kJobCheckpoint);
  EXPECT_EQ(value_after("--csv"), std::string("/jobs/1/") + kJobCsv);
  EXPECT_EQ(value_after("--metrics"), std::string("/jobs/1/") + kJobReport);
  EXPECT_EQ(value_after("--failpoints"), "run/kill=hit@3");
  EXPECT_TRUE(has("--fast-path"));
  EXPECT_TRUE(has("--heatmap"));
  EXPECT_TRUE(has("--quiet"));
  EXPECT_FALSE(has("--resume"));

  const std::vector<std::string> resumed =
      s.to_argv("/bin/runner", "/jobs/1", true);
  EXPECT_NE(std::find(resumed.begin(), resumed.end(), "--resume"),
            resumed.end());
}

TEST(JobSpec, InlineModelTextUsesModelFileFlag) {
  const JobSpec s = spec_of(R"({"model_text":"species CO on *"})");
  const std::vector<std::string> argv = s.to_argv("r", "/d", false);
  const auto it = std::find(argv.begin(), argv.end(), "--model-file");
  ASSERT_NE(it, argv.end());
  EXPECT_EQ(*(it + 1), std::string("/d/") + kJobModelFile);
  EXPECT_EQ(std::find(argv.begin(), argv.end(), "--model"), argv.end());
}

TEST(JobSpec, JsonRoundTripPreservesTheSpec) {
  const JobSpec s = spec_of(
      R"({"model":"ising","algorithm":"lpndca","beta":0.7,"priority":8,)"
      R"("tenant":"lab-3","L":4,"drift_record":true})");
  const JobSpec back = spec_of(s.to_json());
  EXPECT_EQ(back.model, "ising");
  EXPECT_EQ(back.algorithm, "lpndca");
  EXPECT_DOUBLE_EQ(back.beta, 0.7);
  EXPECT_EQ(back.priority, 8);
  EXPECT_EQ(back.tenant, "lab-3");
  EXPECT_EQ(back.l_trials, 4u);
  EXPECT_TRUE(back.drift_record);
}

// ── Daemon ──────────────────────────────────────────────────────────────

class ServeDaemonTest : public ::testing::Test {
 protected:
  DaemonOptions options() {
    DaemonOptions opt;
    opt.runner = CASURF_RUN_PATH;
    opt.data_dir = data_dir_;
    opt.slots = 2;
    return opt;
  }

  static HttpResponse post(Daemon& d, const std::string& target,
                           const std::string& body = {}) {
    HttpRequest req;
    req.method = "POST";
    req.target = target;
    req.body = body;
    return d.handle(req);
  }

  static HttpResponse get(Daemon& d, const std::string& target) {
    HttpRequest req;
    req.method = "GET";
    req.target = target;
    return d.handle(req);
  }

  static std::uint64_t submitted_id(const HttpResponse& resp) {
    EXPECT_EQ(resp.status, 202) << resp.body;
    return Value::parse(resp.body).at("id").as_u64();
  }

  static std::string state_of(Daemon& d, std::uint64_t id) {
    const HttpResponse resp = get(d, "/jobs/" + std::to_string(id));
    EXPECT_NE(resp.status, 404) << resp.body;
    return Value::parse(resp.body).at("state").as_string();
  }

  /// Poll until the job reaches `want` (or any terminal state); returns
  /// the state it landed in.
  static std::string wait_for(Daemon& d, std::uint64_t id,
                              const std::string& want, int timeout_s = 120) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(timeout_s);
    for (;;) {
      const std::string state = state_of(d, id);
      if (state == want || state == "done" || state == "failed" ||
          state == "stopped") {
        return state;
      }
      if (std::chrono::steady_clock::now() > deadline) return state;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  // Short enough to finish in well under a second per worker.
  static constexpr const char* kQuickJob =
      R"({"model":"zgb","algorithm":"rsm","width":16,"height":16,"t_end":2,"dt":1})";
  // Never finishes on its own: the test must stop (preempt) it.
  static constexpr const char* kBlockerJob =
      R"({"model":"zgb","algorithm":"rsm","width":16,"height":16,)"
      R"("t_end":1000000,"dt":1,"checkpoint_every":1})";

  std::string data_dir_ = testing::TempDir() + "/serve_jobs_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter_++);
  static inline int counter_ = 0;
};

TEST_F(ServeDaemonTest, JobRunsToCompletionWithArtifacts) {
  Daemon daemon(options());
  const std::uint64_t id = submitted_id(post(daemon, "/jobs", kQuickJob));
  ASSERT_EQ(wait_for(daemon, id, "done"), "done");

  const HttpResponse status = get(daemon, "/jobs/" + std::to_string(id));
  const Value v = Value::parse(status.body);
  EXPECT_EQ(v.at("exit_code").as_u64(), 0u);
  EXPECT_DOUBLE_EQ(v.at("progress").as_number(), 1.0);

  const HttpResponse csv = get(daemon, "/jobs/" + std::to_string(id) + "/csv");
  EXPECT_EQ(csv.status, 200);
  EXPECT_EQ(csv.content_type, "text/csv");
  EXPECT_EQ(csv.body.rfind("time,", 0), 0u);

  const HttpResponse report =
      get(daemon, "/jobs/" + std::to_string(id) + "/report");
  EXPECT_EQ(report.status, 200);
  EXPECT_TRUE(Value::parse(report.body).find("counters") != nullptr);
}

TEST_F(ServeDaemonTest, InlineModelTextIsParsedByTheWorker) {
  Daemon daemon(options());
  // The bundled ZGB definition inlined as model-DSL text, so the worker
  // exercises the --model-file path end to end.
  const std::string model = io::read_file(
      (fs::path(__FILE__).parent_path().parent_path() / "data" / "zgb.model")
          .string());
  obs::json::Writer w;
  w.begin_object();
  w.key("model_text"), w.string(model);
  w.key("algorithm"), w.string("vssm");
  w.key("width"), w.i64(16);
  w.key("height"), w.i64(16);
  w.key("t_end"), w.number(1);
  w.end_object();
  const std::uint64_t id =
      submitted_id(post(daemon, "/jobs", std::move(w).str()));
  EXPECT_EQ(wait_for(daemon, id, "done"), "done");
}

TEST_F(ServeDaemonTest, InvalidSpecsGet400) {
  Daemon daemon(options());
  EXPECT_EQ(post(daemon, "/jobs", "not json").status, 400);
  EXPECT_EQ(post(daemon, "/jobs", R"({"model":"bogus"})").status, 400);
}

TEST_F(ServeDaemonTest, UnknownRoutesAndMethodsAreMapped) {
  Daemon daemon(options());
  EXPECT_EQ(get(daemon, "/nope").status, 404);
  EXPECT_EQ(get(daemon, "/jobs/999").status, 404);
  EXPECT_EQ(get(daemon, "/jobs/1x").status, 404);
  EXPECT_EQ(post(daemon, "/healthz").status, 405);
  EXPECT_EQ(post(daemon, "/jobs/1/report").status, 405);
  EXPECT_EQ(get(daemon, "/healthz").status, 200);
}

TEST_F(ServeDaemonTest, HigherPriorityJobLeavesTheQueueFirst) {
  DaemonOptions opt = options();
  opt.slots = 1;  // one slot → queue order is observable
  Daemon daemon(opt);
  const std::uint64_t blocker = submitted_id(post(daemon, "/jobs", kBlockerJob));
  ASSERT_EQ(wait_for(daemon, blocker, "running"), "running");

  // Both contenders are blockers too, so whichever one the scheduler
  // picks stays observably "running" instead of racing to "done" between
  // two polls.
  const std::uint64_t low = submitted_id(post(
      daemon, "/jobs",
      R"({"model":"zgb","width":16,"height":16,"t_end":1000000,"dt":1,)"
      R"("checkpoint_every":1,"priority":1})"));
  const std::uint64_t high = submitted_id(post(
      daemon, "/jobs",
      R"({"model":"zgb","width":16,"height":16,"t_end":1000000,"dt":1,)"
      R"("checkpoint_every":1,"priority":9})"));

  // Free the slot: the priority-9 job must be picked over the earlier
  // priority-1 submission.
  EXPECT_EQ(post(daemon, "/jobs/" + std::to_string(blocker) + "/stop").status,
            202);
  ASSERT_EQ(wait_for(daemon, high, "running"), "running");
  EXPECT_EQ(state_of(daemon, low), "queued")
      << "low-priority job overtook the priority-9 submission";
  post(daemon, "/jobs/" + std::to_string(high) + "/stop");
  ASSERT_EQ(wait_for(daemon, low, "running"), "running");
  post(daemon, "/jobs/" + std::to_string(low) + "/stop");
  EXPECT_EQ(wait_for(daemon, low, "stopped"), "stopped");
  EXPECT_EQ(wait_for(daemon, blocker, "stopped"), "stopped");
}

TEST_F(ServeDaemonTest, FullQueueGets429WithRetryAfter) {
  DaemonOptions opt = options();
  opt.slots = 1;
  opt.queue_cap = 2;
  Daemon daemon(opt);
  const std::uint64_t blocker = submitted_id(post(daemon, "/jobs", kBlockerJob));
  ASSERT_EQ(wait_for(daemon, blocker, "running"), "running");
  submitted_id(post(daemon, "/jobs", kQuickJob));
  submitted_id(post(daemon, "/jobs", kQuickJob));

  const HttpResponse full = post(daemon, "/jobs", kQuickJob);
  EXPECT_EQ(full.status, 429) << full.body;
  bool retry_after = false;
  for (const auto& [name, value] : full.extra_headers) {
    if (name == "Retry-After") retry_after = true;
  }
  EXPECT_TRUE(retry_after);
  post(daemon, "/jobs/" + std::to_string(blocker) + "/stop");
}

TEST_F(ServeDaemonTest, TenantQuotaGets403ButOtherTenantsProceed) {
  DaemonOptions opt = options();
  opt.slots = 1;
  opt.tenant_cap = 1;
  Daemon daemon(opt);
  const std::uint64_t blocker = submitted_id(post(
      daemon, "/jobs",
      R"({"model":"zgb","width":16,"height":16,"t_end":1000000,"dt":1,)"
      R"("checkpoint_every":1,"tenant":"alice"})"));
  ASSERT_EQ(wait_for(daemon, blocker, "running"), "running");

  const HttpResponse denied = post(
      daemon, "/jobs",
      R"({"model":"zgb","width":16,"height":16,"t_end":2,"dt":1,"tenant":"alice"})");
  EXPECT_EQ(denied.status, 403) << denied.body;

  const HttpResponse other = post(
      daemon, "/jobs",
      R"({"model":"zgb","width":16,"height":16,"t_end":2,"dt":1,"tenant":"bob"})");
  EXPECT_EQ(other.status, 202) << other.body;
  post(daemon, "/jobs/" + std::to_string(blocker) + "/stop");
}

TEST_F(ServeDaemonTest, StopPreemptsAndStartResumesFromCheckpoint) {
  Daemon daemon(options());
  const std::uint64_t id = submitted_id(post(daemon, "/jobs", kBlockerJob));
  ASSERT_EQ(wait_for(daemon, id, "running"), "running");
  // Give the worker a moment to write its first checkpoint.
  const fs::path ck = fs::path(data_dir_) / ("job-" + std::to_string(id)) /
                      kJobCheckpoint;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!fs::exists(ck) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(fs::exists(ck)) << "worker never checkpointed";

  EXPECT_EQ(post(daemon, "/jobs/" + std::to_string(id) + "/stop").status, 202);
  ASSERT_EQ(wait_for(daemon, id, "stopped"), "stopped");
  EXPECT_TRUE(fs::exists(ck)) << "preemption must retain the checkpoint";
  // 128+15: the worker yielded via graceful SIGTERM, not a crash.
  EXPECT_EQ(Value::parse(get(daemon, "/jobs/" + std::to_string(id)).body)
                .at("exit_code")
                .as_u64(),
            143u);

  // Double-stop on a finished job is a conflict, not a crash.
  EXPECT_EQ(post(daemon, "/jobs/" + std::to_string(id) + "/stop").status, 409);

  // start requeues and the worker resumes from the retained chain.
  EXPECT_EQ(post(daemon, "/jobs/" + std::to_string(id) + "/start").status, 202);
  ASSERT_EQ(wait_for(daemon, id, "running"), "running");
  post(daemon, "/jobs/" + std::to_string(id) + "/stop");
  EXPECT_EQ(wait_for(daemon, id, "stopped"), "stopped");
}

TEST_F(ServeDaemonTest, StoppingAQueuedJobNeverRunsIt) {
  DaemonOptions opt = options();
  opt.slots = 1;
  Daemon daemon(opt);
  const std::uint64_t blocker = submitted_id(post(daemon, "/jobs", kBlockerJob));
  ASSERT_EQ(wait_for(daemon, blocker, "running"), "running");
  const std::uint64_t queued = submitted_id(post(daemon, "/jobs", kQuickJob));
  EXPECT_EQ(post(daemon, "/jobs/" + std::to_string(queued) + "/stop").status,
            200);
  EXPECT_EQ(state_of(daemon, queued), "stopped");
  EXPECT_FALSE(fs::exists(fs::path(data_dir_) /
                          ("job-" + std::to_string(queued)) / kJobReport));
  post(daemon, "/jobs/" + std::to_string(blocker) + "/stop");
}

TEST_F(ServeDaemonTest, DrainRefusesNewWorkAndStopsRunners) {
  Daemon daemon(options());
  const std::uint64_t id = submitted_id(post(daemon, "/jobs", kBlockerJob));
  ASSERT_EQ(wait_for(daemon, id, "running"), "running");
  daemon.drain();
  EXPECT_EQ(post(daemon, "/jobs", kQuickJob).status, 503);
  EXPECT_NE(get(daemon, "/healthz").body.find("draining"), std::string::npos);
  daemon.stop();
  EXPECT_EQ(state_of(daemon, id), "stopped");
}

TEST_F(ServeDaemonTest, RestartOverDataDirRequeuesUnfinishedJobs) {
  // A job directory with a spec but no terminal-state marker is exactly
  // what a daemon crash leaves behind; a new daemon must pick it up.
  const std::string dir = data_dir_ + "/job-7";
  fs::create_directories(dir);
  const JobSpec spec = spec_of(kQuickJob);
  io::atomic_write_file(dir + "/" + kJobSpecFile, spec.to_json());

  Daemon daemon(options());
  EXPECT_EQ(wait_for(daemon, 7, "done"), "done");
  // Fresh ids continue past the recovered one.
  EXPECT_EQ(submitted_id(post(daemon, "/jobs", kQuickJob)), 8u);
}

TEST_F(ServeDaemonTest, StatsCountTheFleet) {
  Daemon daemon(options());
  const std::uint64_t id = submitted_id(post(daemon, "/jobs", kQuickJob));
  ASSERT_EQ(wait_for(daemon, id, "done"), "done");
  const Value stats = Value::parse(get(daemon, "/stats").body);
  EXPECT_EQ(stats.at("done").as_u64(), 1u);
  EXPECT_EQ(stats.at("failed").as_u64(), 0u);
  const Value list = Value::parse(get(daemon, "/jobs").body);
  ASSERT_EQ(list.items().size(), 1u);
  EXPECT_EQ(list.items()[0].at("state").as_string(), "done");
}

}  // namespace
}  // namespace casurf::serve
