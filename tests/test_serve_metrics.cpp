// Serving-layer telemetry (docs/OBSERVABILITY.md, "Serving telemetry"):
// the /metrics exposition route and its reconciliation with /stats, the
// casurf-events/1 lifecycle journals, adaptive Retry-After backpressure,
// worker.log rotation, and the scrape-under-load soak — a serve_churn-style
// fleet with a 10 Hz scraper whose every sample must parse strictly.

#include "serve/daemon.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/atomic_file.hpp"
#include "obs/json.hpp"
#include "obs/prom.hpp"
#include "serve/events.hpp"
#include "serve/job.hpp"

namespace casurf::serve {
namespace {

namespace fs = std::filesystem;
using obs::json::Value;
using obs::prom::Family;

class ServeMetricsTest : public ::testing::Test {
 protected:
  DaemonOptions options() {
    DaemonOptions opt;
    opt.runner = CASURF_RUN_PATH;
    opt.data_dir = data_dir_;
    opt.slots = 2;
    return opt;
  }

  static HttpResponse post(Daemon& d, const std::string& target,
                           const std::string& body = {}) {
    HttpRequest req;
    req.method = "POST";
    req.target = target;
    req.body = body;
    return d.handle(req);
  }

  static HttpResponse get(Daemon& d, const std::string& target) {
    HttpRequest req;
    req.method = "GET";
    req.target = target;
    return d.handle(req);
  }

  static std::uint64_t submitted_id(const HttpResponse& resp) {
    EXPECT_EQ(resp.status, 202) << resp.body;
    return Value::parse(resp.body).at("id").as_u64();
  }

  static std::string state_of(Daemon& d, std::uint64_t id) {
    const HttpResponse resp = get(d, "/jobs/" + std::to_string(id));
    EXPECT_NE(resp.status, 404) << resp.body;
    return Value::parse(resp.body).at("state").as_string();
  }

  static std::string wait_for(Daemon& d, std::uint64_t id,
                              const std::string& want, int timeout_s = 120) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(timeout_s);
    for (;;) {
      const std::string state = state_of(d, id);
      if (state == want || state == "done" || state == "failed" ||
          state == "stopped") {
        return state;
      }
      if (std::chrono::steady_clock::now() > deadline) return state;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  /// Parse a scrape body strictly; any violation fails the test.
  static std::vector<Family> scrape(Daemon& d) {
    const HttpResponse resp = get(d, "/metrics");
    EXPECT_EQ(resp.status, 200) << resp.body;
    EXPECT_EQ(resp.content_type, obs::prom::kContentType);
    return obs::prom::parse(resp.body);
  }

  /// Value of a sample matching `name` and (optional) labels; -1 when
  /// absent. Matches on the SAMPLE name, so suffixed histogram/summary
  /// samples (`casurf_job_duration_ns_count`) resolve even though they
  /// live in a family named by the base.
  static double sample_value(
      const std::vector<Family>& families, const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& labels = {}) {
    for (const Family& f : families) {
      for (const auto& s : f.samples) {
        if (s.name != name) continue;
        bool match = true;
        for (const auto& want : labels) {
          bool found = false;
          for (const auto& have : s.labels) found |= have == want;
          match &= found;
        }
        if (match) return s.value;
      }
    }
    return -1;
  }

  /// Sum over every series of a counter family (all label sets).
  static double family_total(const std::vector<Family>& families,
                             const std::string& name) {
    double total = 0;
    for (const Family& f : families) {
      if (f.name != name) continue;
      for (const auto& s : f.samples) {
        if (s.name == name) total += s.value;
      }
    }
    return total;
  }

  /// The ordered event names of one casurf-events/1 journal.
  static std::vector<std::string> events_of(const std::string& path) {
    std::vector<std::string> out;
    const std::string text = io::read_file(path);
    std::size_t pos = 0;
    std::size_t lineno = 0;
    while (pos < text.size()) {
      std::size_t nl = text.find('\n', pos);
      EXPECT_NE(nl, std::string::npos) << "torn journal line in " << path;
      if (nl == std::string::npos) nl = text.size();
      const std::string line = text.substr(pos, nl - pos);
      pos = nl + 1;
      ++lineno;
      const Value v = Value::parse(line);  // throws on a torn line
      EXPECT_EQ(v.at("schema").as_string(), kEventsSchema)
          << path << ":" << lineno;
      EXPECT_GT(v.at("ts").as_number(), 0) << path << ":" << lineno;
      out.push_back(v.at("event").as_string());
    }
    return out;
  }

  /// Enforce the casurf-events/1 lifecycle grammar over one job journal.
  /// log_rotated may appear at any spawn boundary and is transparent to
  /// the chain.
  static void check_chain(const std::string& path) {
    static const std::map<std::string, std::set<std::string>> kNext = {
        {"submitted", {"scheduled", "cancelled"}},
        {"scheduled", {"spawned", "restarted", "failed"}},
        {"spawned", {"running", "restarted", "finished", "failed", "preempted"}},
        {"running", {"restarted", "finished", "failed", "preempted"}},
        {"restarted",
         {"spawned", "scheduled", "cancelled", "failed", "finished",
          "preempted", "restarted"}},
        {"preempted", {"restarted"}},
        {"failed", {"restarted"}},
        {"cancelled", {"restarted"}},
        {"finished", {}},
    };
    std::vector<std::string> events;
    for (const std::string& e : events_of(path)) {
      if (e != "log_rotated") events.push_back(e);
    }
    ASSERT_FALSE(events.empty()) << path;
    EXPECT_EQ(events.front(), "submitted") << path;
    for (std::size_t i = 0; i + 1 < events.size(); ++i) {
      const auto it = kNext.find(events[i]);
      ASSERT_NE(it, kNext.end()) << path << ": unknown event " << events[i];
      EXPECT_TRUE(it->second.count(events[i + 1]))
          << path << ": illegal transition " << events[i] << " -> "
          << events[i + 1];
    }
    const std::string& last = events.back();
    EXPECT_TRUE(last == "finished" || last == "failed" ||
                last == "preempted" || last == "cancelled")
        << path << ": journal ends in flight at " << last;
  }

  std::string job_dir(std::uint64_t id) const {
    return data_dir_ + "/job-" + std::to_string(id);
  }

  static constexpr const char* kQuickJob =
      R"({"model":"zgb","algorithm":"rsm","width":16,"height":16,"t_end":2,"dt":1})";
  static constexpr const char* kBlockerJob =
      R"({"model":"zgb","algorithm":"rsm","width":16,"height":16,)"
      R"("t_end":1000000,"dt":1,"checkpoint_every":1})";

  std::string data_dir_ = testing::TempDir() + "/serve_metrics_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter_++);
  static inline int counter_ = 0;
};

TEST_F(ServeMetricsTest, MetricsRouteMatchesBuildFlavor) {
  Daemon daemon(options());
  const HttpResponse resp = get(daemon, "/metrics");
  if (!obs::prom::kPromCompiled) {
    EXPECT_EQ(resp.status, 404) << "OFF build must refuse /metrics loudly";
    return;
  }
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, obs::prom::kContentType);
  const auto families = obs::prom::parse(resp.body);
  // A fresh daemon already exposes its static shape.
  EXPECT_EQ(sample_value(families, "casurf_slots"), 2);
  EXPECT_EQ(sample_value(families, "casurf_queue_depth"), 0);
  EXPECT_EQ(sample_value(families, "casurf_draining"), 0);
  EXPECT_EQ(sample_value(families, "casurf_build_info"), 1);
  EXPECT_EQ(post(daemon, "/metrics").status, 405);
}

TEST_F(ServeMetricsTest, MetricsReconcileWithStatsAfterJobsComplete) {
  if (!obs::prom::kPromCompiled) GTEST_SKIP() << "metrics compiled out";
  Daemon daemon(options());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(submitted_id(post(daemon, "/jobs", kQuickJob)));
  }
  for (const std::uint64_t id : ids) {
    ASSERT_EQ(wait_for(daemon, id, "done"), "done");
  }

  const auto families = scrape(daemon);
  const Value stats = Value::parse(get(daemon, "/stats").body);
  const auto state_gauge = [&](const char* state) {
    return sample_value(families, "casurf_jobs", {{"state", state}});
  };
  EXPECT_EQ(state_gauge("queued"), stats.at("queued").as_number());
  EXPECT_EQ(state_gauge("running"), stats.at("running").as_number());
  EXPECT_EQ(state_gauge("done"), stats.at("done").as_number());
  EXPECT_EQ(state_gauge("failed"), stats.at("failed").as_number());
  EXPECT_EQ(state_gauge("stopped"), stats.at("stopped").as_number());
  EXPECT_EQ(state_gauge("done"), 3);
  EXPECT_EQ(sample_value(families, "casurf_queue_depth"),
            stats.at("queued").as_number());
  EXPECT_EQ(sample_value(families, "casurf_retry_after_seconds"),
            stats.at("retry_after").as_number());
  EXPECT_EQ(family_total(families, "casurf_job_submissions_total"), 3);
  // Scheduling histograms: one queue-wait per scheduling, one duration per
  // finish.
  EXPECT_EQ(sample_value(families, "casurf_job_queue_wait_ns_count"), 3);
  EXPECT_EQ(sample_value(families, "casurf_job_duration_ns_count"), 3);
  // The run-report harvest rolled real worker counters up.
  EXPECT_GT(family_total(families, "casurf_worker_trials_total"), 0);
  // Per-tenant gauges exist for the default tenant.
  EXPECT_EQ(sample_value(families, "casurf_tenant_jobs",
                         {{"tenant", "default"}, {"state", "running"}}),
            0);
}

TEST_F(ServeMetricsTest, EventJournalsFormCompleteLifecycleChains) {
  const std::uint64_t quick_id = [&] {
    Daemon daemon(options());
    // Plain life: submitted → scheduled → spawned → running → finished.
    const std::uint64_t quick = submitted_id(post(daemon, "/jobs", kQuickJob));
    EXPECT_EQ(wait_for(daemon, quick, "done"), "done");

    // Preempt → requeue → preempt: the chain survives restarts.
    const std::uint64_t blocker =
        submitted_id(post(daemon, "/jobs", kBlockerJob));
    EXPECT_EQ(wait_for(daemon, blocker, "running"), "running");
    EXPECT_EQ(post(daemon, "/jobs/" + std::to_string(blocker) + "/stop").status,
              202);
    EXPECT_EQ(wait_for(daemon, blocker, "stopped"), "stopped");
    EXPECT_EQ(
        post(daemon, "/jobs/" + std::to_string(blocker) + "/start").status,
        202);
    EXPECT_EQ(wait_for(daemon, blocker, "running"), "running");
    EXPECT_EQ(post(daemon, "/jobs/" + std::to_string(blocker) + "/stop").status,
              202);
    EXPECT_EQ(wait_for(daemon, blocker, "stopped"), "stopped");

    check_chain(job_dir(quick) + "/" + kJobEvents);
    check_chain(job_dir(blocker) + "/" + kJobEvents);
    const std::vector<std::string> blocker_events =
        events_of(job_dir(blocker) + "/" + kJobEvents);
    EXPECT_GE(std::count(blocker_events.begin(), blocker_events.end(),
                         "preempted"),
              2);
    EXPECT_GE(std::count(blocker_events.begin(), blocker_events.end(),
                         "restarted"),
              1);
    daemon.stop();
    return quick;
  }();
  (void)quick_id;

  // The daemon-level journal brackets the process lifecycle.
  const std::vector<std::string> daemon_events =
      events_of(data_dir_ + "/events.jsonl");
  ASSERT_FALSE(daemon_events.empty());
  EXPECT_EQ(daemon_events.front(), "daemon_started");
  EXPECT_EQ(daemon_events.back(), "daemon_stopped");
  EXPECT_NE(std::find(daemon_events.begin(), daemon_events.end(), "draining"),
            daemon_events.end());
}

TEST_F(ServeMetricsTest, RetryAfterScalesWithTheBacklog) {
  DaemonOptions opt = options();
  opt.slots = 1;
  opt.queue_cap = 8;
  Daemon daemon(opt);
  // Pin the single slot, then queue to the cap.
  const std::uint64_t blocker = submitted_id(post(daemon, "/jobs", kBlockerJob));
  ASSERT_EQ(wait_for(daemon, blocker, "running"), "running");
  for (std::size_t i = 0; i < opt.queue_cap; ++i) {
    submitted_id(post(daemon, "/jobs", kQuickJob));
  }

  // /stats advertises the backoff POST /jobs would return right now:
  // 8 queued / 1 slot = 8 scheduling turns.
  const Value stats = Value::parse(get(daemon, "/stats").body);
  EXPECT_EQ(stats.at("retry_after").as_u64(), 8u);

  const HttpResponse full = post(daemon, "/jobs", kQuickJob);
  EXPECT_EQ(full.status, 429);
  bool saw_header = false;
  for (const auto& [name, value] : full.extra_headers) {
    if (name == "Retry-After") {
      saw_header = true;
      EXPECT_EQ(value, "8");
    }
  }
  EXPECT_TRUE(saw_header) << "429 must advertise an adaptive Retry-After";

  // Draining pushes the advice to the 30 s ceiling.
  daemon.drain(SIGTERM);
  const HttpResponse refused = post(daemon, "/jobs", kQuickJob);
  EXPECT_EQ(refused.status, 503);
  saw_header = false;
  for (const auto& [name, value] : refused.extra_headers) {
    if (name == "Retry-After") {
      saw_header = true;
      EXPECT_EQ(value, "30");
    }
  }
  EXPECT_TRUE(saw_header);
  EXPECT_EQ(Value::parse(get(daemon, "/stats").body).at("retry_after").as_u64(),
            30u);
}

TEST_F(ServeMetricsTest, WorkerLogRotatesBetweenSpawns) {
  DaemonOptions opt = options();
  opt.worker_log_cap = 512;
  Daemon daemon(opt);

  const std::uint64_t id = submitted_id(post(daemon, "/jobs", kBlockerJob));
  ASSERT_EQ(wait_for(daemon, id, "running"), "running");
  ASSERT_EQ(post(daemon, "/jobs/" + std::to_string(id) + "/stop").status, 202);
  ASSERT_EQ(wait_for(daemon, id, "stopped"), "stopped");

  // Fatten the idle worker.log past the cap; the requeued attempt must
  // rotate it away before its worker spawns.
  io::atomic_write_file(job_dir(id) + "/" + kJobLog, std::string(4096, 'x'));
  ASSERT_EQ(post(daemon, "/jobs/" + std::to_string(id) + "/start").status, 202);
  ASSERT_EQ(wait_for(daemon, id, "running"), "running");
  ASSERT_EQ(post(daemon, "/jobs/" + std::to_string(id) + "/stop").status, 202);
  ASSERT_EQ(wait_for(daemon, id, "stopped"), "stopped");

  EXPECT_TRUE(fs::exists(job_dir(id) + "/" + kJobLogRotated));
  // Whatever landed in .1 was over the cap when it rotated.
  EXPECT_GT(fs::file_size(job_dir(id) + "/" + kJobLogRotated), 512u);
  const std::vector<std::string> events =
      events_of(job_dir(id) + "/" + kJobEvents);
  EXPECT_NE(std::find(events.begin(), events.end(), "log_rotated"),
            events.end());
  check_chain(job_dir(id) + "/" + kJobEvents);
  if (obs::prom::kPromCompiled) {
    EXPECT_GE(family_total(scrape(daemon), "casurf_job_log_rotations_total"),
              1);
  }
}

TEST_F(ServeMetricsTest, SoakScrapeUnderLoadStaysParseableAndReconciles) {
  DaemonOptions opt = options();
  opt.slots = 4;
  opt.queue_cap = 256;
  opt.tenant_cap = 256;
  Daemon daemon(opt);

  // 10 Hz scraper riding along for the whole churn: every /metrics body
  // must parse strictly (or 404 consistently on an OFF build) and every
  // scrape must be internally consistent.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const HttpResponse resp = get(daemon, "/metrics");
      if (!obs::prom::kPromCompiled) {
        EXPECT_EQ(resp.status, 404);
      } else {
        ASSERT_EQ(resp.status, 200);
        std::vector<Family> families;
        ASSERT_NO_THROW(families = obs::prom::parse(resp.body))
            << resp.body.substr(0, 400);
        // Both gauges are computed under one lock hold: always equal.
        EXPECT_EQ(sample_value(families, "casurf_queue_depth"),
                  sample_value(families, "casurf_jobs", {{"state", "queued"}}));
      }
      ASSERT_NO_THROW((void)Value::parse(get(daemon, "/stats").body));
      scrapes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  // The churn: 100 quick jobs across tenants/priorities plus 4 blockers
  // that get preempted and requeued mid-flight.
  std::vector<std::uint64_t> quick_ids;
  std::vector<std::uint64_t> blocker_ids;
  for (int i = 0; i < 4; ++i) {
    blocker_ids.push_back(submitted_id(post(daemon, "/jobs", kBlockerJob)));
  }
  for (int i = 0; i < 100; ++i) {
    obs::json::Writer w;
    w.begin_object();
    w.key("model"), w.string("zgb");
    w.key("algorithm"), w.string("rsm");
    w.key("width"), w.i64(16);
    w.key("height"), w.i64(16);
    w.key("t_end"), w.number(2);
    w.key("dt"), w.number(1);
    w.key("tenant"), w.string("lab-" + std::to_string(i % 3));
    w.key("priority"), w.i64(i % 10);
    w.end_object();
    quick_ids.push_back(submitted_id(post(daemon, "/jobs", std::move(w).str())));
  }

  for (const std::uint64_t id : blocker_ids) {
    ASSERT_EQ(wait_for(daemon, id, "running"), "running");
    ASSERT_EQ(post(daemon, "/jobs/" + std::to_string(id) + "/stop").status,
              202);
    ASSERT_EQ(wait_for(daemon, id, "stopped"), "stopped");
  }
  // Requeue two of them, then preempt again once running.
  for (std::size_t i = 0; i < 2; ++i) {
    const std::uint64_t id = blocker_ids[i];
    ASSERT_EQ(post(daemon, "/jobs/" + std::to_string(id) + "/start").status,
              202);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    const std::uint64_t id = blocker_ids[i];
    ASSERT_EQ(wait_for(daemon, id, "running"), "running");
    ASSERT_EQ(post(daemon, "/jobs/" + std::to_string(id) + "/stop").status,
              202);
    ASSERT_EQ(wait_for(daemon, id, "stopped"), "stopped");
  }
  for (const std::uint64_t id : quick_ids) {
    ASSERT_EQ(wait_for(daemon, id, "done"), "done") << "job " << id;
  }

  done.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0u);

  // Quiesced: /metrics and /stats must reconcile exactly.
  const Value stats = Value::parse(get(daemon, "/stats").body);
  EXPECT_EQ(stats.at("queued").as_u64(), 0u);
  EXPECT_EQ(stats.at("running").as_u64(), 0u);
  EXPECT_EQ(stats.at("done").as_u64(), 100u);
  EXPECT_EQ(stats.at("stopped").as_u64(), 4u);
  if (obs::prom::kPromCompiled) {
    const auto families = scrape(daemon);
    EXPECT_EQ(sample_value(families, "casurf_jobs", {{"state", "queued"}}), 0);
    EXPECT_EQ(sample_value(families, "casurf_jobs", {{"state", "running"}}), 0);
    EXPECT_EQ(sample_value(families, "casurf_jobs", {{"state", "done"}}),
              stats.at("done").as_number());
    EXPECT_EQ(sample_value(families, "casurf_jobs", {{"state", "failed"}}),
              stats.at("failed").as_number());
    EXPECT_EQ(sample_value(families, "casurf_jobs", {{"state", "stopped"}}),
              stats.at("stopped").as_number());
    EXPECT_EQ(family_total(families, "casurf_job_submissions_total"), 104);
    EXPECT_EQ(family_total(families, "casurf_job_preemptions_total"), 6);
    EXPECT_EQ(sample_value(families, "casurf_job_restarts_total",
                           {{"cause", "requeue"}}),
              2);
    // 104 first schedulings + 2 requeues.
    EXPECT_EQ(sample_value(families, "casurf_job_queue_wait_ns_count"), 106);
    EXPECT_EQ(sample_value(families, "casurf_job_duration_ns_count"), 106);
    EXPECT_GT(family_total(families, "casurf_worker_trials_total"), 0);
    EXPECT_GT(family_total(families, "casurf_http_requests_total"), 0);
  }

  // Every job's journal must read as a complete lifecycle chain.
  for (const std::uint64_t id : quick_ids) {
    check_chain(job_dir(id) + "/" + kJobEvents);
  }
  for (const std::uint64_t id : blocker_ids) {
    check_chain(job_dir(id) + "/" + kJobEvents);
  }
}

}  // namespace
}  // namespace casurf::serve
