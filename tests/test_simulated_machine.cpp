#include "parallel/simulated_machine.hpp"

#include <gtest/gtest.h>

#include "models/zgb.hpp"
#include "partition/coloring.hpp"

namespace casurf {
namespace {

MachineParams test_params() {
  MachineParams p;
  p.t_site_seconds = 1e-7;
  p.serial_fraction = 0.02;
  p.barrier_alpha = 4e-5;
  p.barrier_beta = 1.5e-5;
  return p;
}

Partition five_chunks(std::int32_t side) {
  return Partition::linear_form(Lattice(side, side), 1, 3, 5);
}

TEST(SimulatedMachine, SingleProcessorBaselineIsWorkOnly) {
  const SimulatedMachine machine(test_params());
  const Partition p = five_chunks(100);
  const auto point = machine.predict(p, 1, 10);
  // 10 steps * 10000 sites * 1e-7 s.
  EXPECT_NEAR(point.t1_seconds, 10 * 10000 * 1e-7, 1e-12);
  EXPECT_DOUBLE_EQ(point.t1_seconds, point.tp_seconds);
  EXPECT_DOUBLE_EQ(point.speedup(), 1.0);
}

TEST(SimulatedMachine, SpeedupBelowIdeal) {
  const SimulatedMachine machine(test_params());
  const Partition p = five_chunks(400);
  for (const int procs : {2, 4, 8}) {
    const auto point = machine.predict(p, procs, 5);
    EXPECT_GT(point.speedup(), 1.0) << procs;
    EXPECT_LT(point.speedup(), procs) << procs;
  }
}

TEST(SimulatedMachine, SpeedupGrowsWithSystemSize) {
  // The paper's Fig 7 shape: at fixed p, bigger lattices amortize the
  // per-sweep synchronization better.
  const SimulatedMachine machine(test_params());
  double last = 0;
  for (const std::int32_t side : {200, 400, 600, 800, 1000}) {
    const auto point = machine.predict(five_chunks(side), 8, 3);
    EXPECT_GT(point.speedup(), last) << side;
    last = point.speedup();
  }
}

TEST(SimulatedMachine, SpeedupSaturatesWithProcessorsOnSmallSystems) {
  // On a small lattice the barrier term wins: going from 8 to 64
  // processors buys almost nothing (and the marginal gain shrinks).
  const SimulatedMachine machine(test_params());
  const Partition p = five_chunks(100);
  const double s8 = machine.predict(p, 8, 3).speedup();
  const double s16 = machine.predict(p, 16, 3).speedup();
  const double s64 = machine.predict(p, 64, 3).speedup();
  EXPECT_LT(s16 - s8, s8);            // strongly diminishing returns
  EXPECT_LT(s64 - s16, s16 - s8 + 1); // still flattening
}

TEST(SimulatedMachine, SerialFractionCapsSpeedup) {
  // Amdahl: with sigma = 0.1, speedup can never exceed 10 regardless of p.
  MachineParams params = test_params();
  params.serial_fraction = 0.1;
  params.barrier_alpha = 0;
  params.barrier_beta = 0;
  const SimulatedMachine machine(params);
  const auto point = machine.predict(five_chunks(1000), 1000, 1);
  EXPECT_LT(point.speedup(), 10.0);
  EXPECT_GT(point.speedup(), 8.0);
}

TEST(SimulatedMachine, LoadImbalanceOfUnequalChunksCaptured) {
  // One huge chunk and many tiny ones: ceil(n/p) on the huge chunk
  // dominates; compare against a balanced partition with the same total.
  const Lattice lat(10, 10);
  std::vector<ChunkId> unbalanced(lat.size(), 0);
  for (SiteIndex s = 90; s < 100; ++s) unbalanced[s] = 1 + (s - 90);
  const Partition bad(lat, std::move(unbalanced));  // 90 + 10x1
  const Partition good = Partition::linear_form(lat, 1, 3, 5);

  MachineParams params = test_params();
  params.barrier_alpha = 0;
  params.barrier_beta = 0;
  params.serial_fraction = 0;
  const SimulatedMachine machine(params);
  EXPECT_GT(machine.predict(bad, 4, 1).tp_seconds,
            machine.predict(good, 4, 1).tp_seconds);
}

TEST(SimulatedMachine, InvalidProcessorCountThrows) {
  const SimulatedMachine machine(test_params());
  EXPECT_THROW((void)machine.predict(five_chunks(100), 0, 1), std::invalid_argument);
}

TEST(SimulatedMachine, CalibrateMeasuresPositiveTrialCost) {
  auto zgb = models::make_zgb();
  const Lattice lat(32, 32);
  PndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant),
                     {Partition::linear_form(lat, 1, 3, 2)}, 1);
  const MachineParams params = SimulatedMachine::calibrate(sim, 5);
  EXPECT_GT(params.t_site_seconds, 0.0);
  EXPECT_LT(params.t_site_seconds, 1e-3);  // sanity: well under a millisecond
}

}  // namespace
}  // namespace casurf
