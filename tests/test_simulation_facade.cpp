#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "models/zgb.hpp"

namespace casurf {
namespace {

class AlgorithmSweep : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgorithmSweep, BuildsAndAdvances) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 10.0));
  SimulationOptions opt;
  opt.algorithm = GetParam();
  opt.seed = 3;
  opt.threads = 2;
  auto sim = make_simulator(zgb.model, Configuration(Lattice(12, 12), 3, zgb.vacant), opt);
  ASSERT_NE(sim, nullptr);
  sim->advance_to(1.0);
  EXPECT_GE(sim->time(), 1.0);
  EXPECT_GT(sim->counters().trials, 0u);
  EXPECT_EQ(sim->name(), algorithm_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(All, AlgorithmSweep,
                         ::testing::Values(Algorithm::kRsm, Algorithm::kVssm,
                                           Algorithm::kFrm, Algorithm::kNdca,
                                           Algorithm::kPndca, Algorithm::kLPndca,
                                           Algorithm::kTPndca,
                                           Algorithm::kParallelPndca));

TEST(SimulationFacade, AutoPartitionIsFiveChunksForZgb) {
  auto zgb = models::make_zgb();
  SimulationOptions opt;
  opt.algorithm = Algorithm::kPndca;
  auto sim = make_simulator(zgb.model, Configuration(Lattice(20, 20), 3, zgb.vacant), opt);
  auto* pndca = dynamic_cast<PndcaSimulator*>(sim.get());
  ASSERT_NE(pndca, nullptr);
  EXPECT_EQ(pndca->current_partition().num_chunks(), 5u);
}

TEST(SimulationFacade, ExplicitPartitionHonored) {
  auto zgb = models::make_zgb();
  const Lattice lat(20, 20);
  SimulationOptions opt;
  opt.algorithm = Algorithm::kLPndca;
  opt.l_trials = 10;
  opt.partition = std::make_shared<Partition>(Partition::singletons(lat));
  auto sim = make_simulator(zgb.model, Configuration(lat, 3, zgb.vacant), opt);
  auto* lp = dynamic_cast<LPndcaSimulator*>(sim.get());
  ASSERT_NE(lp, nullptr);
  EXPECT_EQ(lp->partition().num_chunks(), 400u);
  EXPECT_EQ(lp->trials_per_batch(), 10u);
}

TEST(SimulationFacade, WrongLatticePartitionThrows) {
  auto zgb = models::make_zgb();
  SimulationOptions opt;
  opt.algorithm = Algorithm::kPndca;
  opt.partition = std::make_shared<Partition>(Partition::singletons(Lattice(4, 4)));
  EXPECT_THROW((void)make_simulator(zgb.model,
                                    Configuration(Lattice(20, 20), 3, zgb.vacant), opt),
               std::invalid_argument);
}

TEST(SimulationFacade, AlgorithmNamesAreUnique) {
  const Algorithm all[] = {Algorithm::kRsm,    Algorithm::kVssm,
                           Algorithm::kFrm,    Algorithm::kNdca,
                           Algorithm::kPndca,  Algorithm::kLPndca,
                           Algorithm::kTPndca, Algorithm::kParallelPndca};
  std::set<std::string> names;
  for (const Algorithm a : all) names.insert(algorithm_name(a));
  EXPECT_EQ(names.size(), std::size(all));
}

TEST(SimulationFacade, TimeModePropagates) {
  auto zgb = models::make_zgb();  // K = 4
  SimulationOptions opt;
  opt.algorithm = Algorithm::kRsm;
  opt.time_mode = TimeMode::kDeterministic;
  auto sim = make_simulator(zgb.model, Configuration(Lattice(10, 10), 3, zgb.vacant), opt);
  sim->mc_step();
  EXPECT_NEAR(sim->time(), 1.0 / zgb.model.total_rate(), 1e-12);
}

}  // namespace
}  // namespace casurf
