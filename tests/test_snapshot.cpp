#include "io/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "models/zgb.hpp"

namespace casurf::io {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  // PID-suffixed: ctest -j runs each test case as its own concurrent
  // process, so a fixed name would be clobbered by sibling cases.
  std::string path_ = ::testing::TempDir() + "casurf_snapshot_test." +
                      std::to_string(::getpid()) + ".txt";
  std::string ppm_ = ::testing::TempDir() + "casurf_snapshot_test." +
                     std::to_string(::getpid()) + ".ppm";
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(ppm_.c_str());
  }
};

TEST_F(SnapshotTest, RoundTripPreservesState) {
  const auto zgb = models::make_zgb();
  Configuration cfg(Lattice(12, 7), 3, zgb.vacant);
  cfg.set(Vec2{3, 2}, zgb.co);
  cfg.set(Vec2{11, 6}, zgb.o);
  cfg.set(Vec2{0, 0}, zgb.o);

  save_snapshot(path_, cfg, zgb.model.species());
  const Snapshot snap = load_snapshot(path_);

  EXPECT_EQ(snap.config, cfg);
  EXPECT_EQ(snap.species, (std::vector<std::string>{"*", "CO", "O"}));
  for (Species s = 0; s < 3; ++s) EXPECT_EQ(snap.config.count(s), cfg.count(s));
}

TEST_F(SnapshotTest, MismatchedSpeciesSetRejected) {
  const Configuration cfg(Lattice(4, 4), 3, 0);
  const SpeciesSet wrong({"a", "b"});  // 2 != 3
  EXPECT_THROW(save_snapshot(path_, cfg, wrong), std::runtime_error);
}

TEST_F(SnapshotTest, LoadRejectsBadMagic) {
  std::ofstream(path_) << "not-a-snapshot 9\n";
  EXPECT_THROW((void)load_snapshot(path_), std::runtime_error);
}

TEST_F(SnapshotTest, LoadRejectsBadSpeciesIndex) {
  std::ofstream(path_) << "casurf-snapshot 1\nlattice 2 1\nspecies 2 * A\ndata\n0 7\n";
  EXPECT_THROW((void)load_snapshot(path_), std::runtime_error);
}

TEST_F(SnapshotTest, LoadRejectsTruncatedData) {
  std::ofstream(path_) << "casurf-snapshot 1\nlattice 3 2\nspecies 2 * A\ndata\n0 1 0\n";
  EXPECT_THROW((void)load_snapshot(path_), std::runtime_error);
}

TEST_F(SnapshotTest, MissingFileThrows) {
  EXPECT_THROW((void)load_snapshot("/nonexistent/zzz.snap"), std::runtime_error);
}

TEST_F(SnapshotTest, BitFlippedDataCellIsRejectedWithCoordinates) {
  const auto zgb = models::make_zgb();
  const Configuration cfg(Lattice(6, 4), 3, zgb.vacant);
  save_snapshot(path_, cfg, zgb.model.species());

  // Flip a data digit into a non-numeric byte — the parse must fail and
  // name the cell, not silently read a wrong lattice.
  std::ifstream in(path_);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::size_t data_pos = text.find("data\n") + 5;
  text[data_pos] = '@';
  std::ofstream(path_) << text;

  try {
    (void)load_snapshot(path_);
    FAIL() << "corrupted snapshot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("(0,0)"), std::string::npos) << e.what();
  }
}

TEST_F(SnapshotTest, RemapTranslatesReorderedSpeciesByName) {
  // A snapshot written with species order {*, CO, O}, loaded into a model
  // that lists the same names as {O, *, CO}: every site must be translated
  // to the loader's index for the same name.
  const auto zgb = models::make_zgb();
  Configuration cfg(Lattice(4, 3), 3, zgb.vacant);
  cfg.set(Vec2{1, 1}, zgb.co);
  cfg.set(Vec2{2, 2}, zgb.o);
  save_snapshot(path_, cfg, zgb.model.species());

  const Snapshot snap = load_snapshot(path_);
  const SpeciesSet reordered({"O", "*", "CO"});
  const Configuration remapped = remap_species(snap, reordered);

  EXPECT_EQ(remapped.get(remapped.lattice().index({1, 1})), 2);  // CO
  EXPECT_EQ(remapped.get(remapped.lattice().index({2, 2})), 0);  // O
  EXPECT_EQ(remapped.get(remapped.lattice().index({0, 0})), 1);  // vacant
  EXPECT_EQ(remapped.count(1), cfg.count(zgb.vacant));
  EXPECT_EQ(remapped.count(2), cfg.count(zgb.co));
  EXPECT_EQ(remapped.count(0), cfg.count(zgb.o));
}

TEST_F(SnapshotTest, RemapIsIdentityWhenOrdersAgree) {
  const auto zgb = models::make_zgb();
  Configuration cfg(Lattice(5, 5), 3, zgb.vacant);
  cfg.set(Vec2{3, 3}, zgb.o);
  save_snapshot(path_, cfg, zgb.model.species());
  const Snapshot snap = load_snapshot(path_);
  EXPECT_EQ(remap_species(snap, zgb.model.species()), cfg);
}

TEST_F(SnapshotTest, RemapRejectsUnknownSpeciesByName) {
  const auto zgb = models::make_zgb();
  const Configuration cfg(Lattice(3, 3), 3, zgb.vacant);
  save_snapshot(path_, cfg, zgb.model.species());
  const Snapshot snap = load_snapshot(path_);

  const SpeciesSet other({"*", "CO", "N2"});  // no "O"
  try {
    (void)remap_species(snap, other);
    FAIL() << "unknown species accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'O'"), std::string::npos) << e.what();
  }
}

TEST_F(SnapshotTest, PpmHasCorrectHeaderAndSize) {
  const Configuration cfg(Lattice(5, 3), 2, 0);
  write_ppm(ppm_, cfg);
  std::ifstream in(ppm_, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(5 * 3 * 3);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(pixels.size()));
  in.get();
  EXPECT_TRUE(in.eof());
}

TEST_F(SnapshotTest, PpmUsesPalettePerSpecies) {
  Configuration cfg(Lattice(2, 1), 2, 0);
  cfg.set(Vec2{1, 0}, 1);
  write_ppm(ppm_, cfg);
  std::ifstream in(ppm_, std::ios::binary);
  std::string line;
  std::getline(in, line);  // P6
  std::getline(in, line);  // dims
  std::getline(in, line);  // maxval
  unsigned char px[6];
  in.read(reinterpret_cast<char*>(px), 6);
  const Rgb c0 = default_palette(0);
  const Rgb c1 = default_palette(1);
  EXPECT_EQ(px[0], c0.r);
  EXPECT_EQ(px[1], c0.g);
  EXPECT_EQ(px[2], c0.b);
  EXPECT_EQ(px[3], c1.r);
  EXPECT_EQ(px[4], c1.g);
  EXPECT_EQ(px[5], c1.b);
}

TEST(DefaultPalette, CyclesOccupiedColorsBeyondEight) {
  // The cycle covers the seven OCCUPIED colors only: species 8 wraps onto
  // species 1's color, species 9 onto species 2's, never onto the vacant
  // near-white (the regression: s % 8 gave species 8 the vacant color).
  const auto same = [](Rgb a, Rgb b) {
    return a.r == b.r && a.g == b.g && a.b == b.b;
  };
  EXPECT_TRUE(same(default_palette(8), default_palette(1)));
  EXPECT_TRUE(same(default_palette(9), default_palette(2)));
  EXPECT_TRUE(same(default_palette(15), default_palette(1)));
  for (Species s = 1; s < 32; ++s) {
    EXPECT_FALSE(same(default_palette(s), default_palette(0)))
        << "occupied species " << int(s) << " renders as vacant";
  }
}

TEST(DefaultPalette, DistinctWithinFirstEight) {
  for (Species a = 0; a < 8; ++a) {
    for (Species b = a + 1; b < 8; ++b) {
      const Rgb ca = default_palette(a);
      const Rgb cb = default_palette(b);
      EXPECT_FALSE(ca.r == cb.r && ca.g == cb.g && ca.b == cb.b)
          << "species " << int(a) << " and " << int(b) << " share a color";
    }
  }
}

TEST_F(SnapshotTest, PpmManySpeciesOccupiedSitesVisible) {
  // A 12-species model: every occupied species must render in a non-vacant
  // color, deterministically, including the ones past the palette table.
  constexpr Species kNum = 12;
  Configuration cfg(Lattice(kNum, 1), kNum, 0);
  for (Species s = 1; s < kNum; ++s) cfg.set(Vec2{s, 0}, s);
  write_ppm(ppm_, cfg);
  std::ifstream in(ppm_, std::ios::binary);
  std::string line;
  std::getline(in, line);  // P6
  std::getline(in, line);  // dims
  std::getline(in, line);  // maxval
  unsigned char px[kNum * 3];
  in.read(reinterpret_cast<char*>(px), sizeof px);
  const Rgb vac = default_palette(0);
  EXPECT_EQ(px[0], vac.r);
  for (Species s = 1; s < kNum; ++s) {
    const Rgb expect = default_palette(s);
    EXPECT_EQ(px[3 * s + 0], expect.r) << "species " << int(s);
    EXPECT_EQ(px[3 * s + 1], expect.g);
    EXPECT_EQ(px[3 * s + 2], expect.b);
    EXPECT_FALSE(px[3 * s + 0] == vac.r && px[3 * s + 1] == vac.g &&
                 px[3 * s + 2] == vac.b)
        << "species " << int(s) << " rendered vacant-white";
  }
}

}  // namespace
}  // namespace casurf::io
