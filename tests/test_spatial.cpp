#include "obs/spatial.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "io/atomic_file.hpp"
#include "models/zgb.hpp"
#include "obs/json.hpp"
#include "partition/conflict.hpp"
#include "partition/partition.hpp"

namespace casurf::obs {
namespace {

using json::Value;

// The von Neumann star the nearest-neighbor models conflict over.
std::vector<Vec2> nn_offsets() {
  return {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
}

#ifndef CASURF_NO_METRICS

TEST(SpatialMap, CountsAttemptsFiresRejects) {
  SpatialMap map(16);
  map.record_attempt(3);
  map.record_attempt(3);
  map.record_fire(3);
  map.record_attempt(7);
  EXPECT_EQ(map.attempts(3), 2u);
  EXPECT_EQ(map.fires(3), 1u);
  EXPECT_EQ(map.rejects(3), 1u);
  EXPECT_EQ(map.attempts(7), 1u);
  EXPECT_EQ(map.fires(7), 0u);
  EXPECT_EQ(map.total_attempts(), 3u);
  EXPECT_EQ(map.total_fires(), 1u);
  map.reset();
  EXPECT_EQ(map.total_attempts(), 0u);
  EXPECT_EQ(map.attempts(3), 0u);
}

TEST(SpatialProbe, NullMapIsOffAndAttachedMapRecords) {
  SpatialProbe probe;
  probe.attempt(0);  // no map: must be a harmless no-op
  probe.fire(0);
  EXPECT_EQ(probe.map(), nullptr);
  SpatialMap map(4);
  probe.attach(&map);
  probe.attempt(2);
  probe.fire(2);
  EXPECT_EQ(map.attempts(2), 1u);
  EXPECT_EQ(map.fires(2), 1u);
  probe.attach(nullptr);
  probe.attempt(2);
  EXPECT_EQ(map.attempts(2), 1u);
}

#else

TEST(SpatialMap, RecordingCompilesOutUnderNoMetrics) {
  SpatialMap map(8);
  map.record_attempt(1);
  map.record_fire(1);
  EXPECT_EQ(map.total_attempts(), 0u);
  EXPECT_EQ(map.total_fires(), 0u);
}

#endif  // CASURF_NO_METRICS

TEST(SeamMask, BlocksPartitionClassifiesBordersOnly) {
  // 8x8 in 4x4 blocks under the von Neumann star: a site is seam iff it
  // lies on its block's border ring; each block keeps a 2x2 interior.
  const Lattice lat(8, 8);
  const Partition part = Partition::blocks(lat, 4, 4);
  const std::vector<std::uint8_t> mask = seam_mask(part, nn_offsets());
  std::size_t seam = 0;
  for (SiteIndex s = 0; s < lat.size(); ++s) {
    const Vec2 p = lat.coord(s);
    const bool border = p.x % 4 == 0 || p.x % 4 == 3 || p.y % 4 == 0 || p.y % 4 == 3;
    EXPECT_EQ(mask[s] != 0, border) << "site " << s;
    seam += mask[s];
  }
  EXPECT_EQ(seam, 64u - 4u * 4u);
}

TEST(SeamMask, NoOffsetsMeansNoSeams) {
  const Partition part = Partition::blocks(Lattice(4, 4), 2, 2);
  for (const std::uint8_t m : seam_mask(part, {})) EXPECT_EQ(m, 0);
}

TEST(SeamMask, SingleChunkHasNoSeams) {
  const Partition part = Partition::single_chunk(Lattice(6, 6));
  for (const std::uint8_t m : seam_mask(part, nn_offsets())) EXPECT_EQ(m, 0);
}

TEST(Summarize, RejectsSiteCountMismatch) {
  const SpatialMap map(9);
  const Partition part = Partition::blocks(Lattice(4, 4), 2, 2);
  EXPECT_THROW(summarize(map, part, nn_offsets()), std::invalid_argument);
}

TEST(Summarize, EmptyMapIsBalancedAndRatioUndefined) {
  const SpatialMap map(64);
  const Partition part = Partition::blocks(Lattice(8, 8), 4, 4);
  const SpatialSummary sum = summarize(map, part, nn_offsets());
  ASSERT_EQ(sum.per_chunk.size(), 4u);
  for (const ChunkActivity& c : sum.per_chunk) {
    EXPECT_EQ(c.sites, 16u);
    EXPECT_EQ(c.attempts, 0u);
    EXPECT_EQ(c.fires, 0u);
  }
  EXPECT_DOUBLE_EQ(sum.chunk_fire_imbalance, 1.0);
  EXPECT_EQ(sum.seam_sites, 48u);
  EXPECT_EQ(sum.interior_sites, 16u);
  EXPECT_DOUBLE_EQ(sum.seam_interior_fire_ratio, 0.0);
}

#ifndef CASURF_NO_METRICS

TEST(Summarize, HandComputedChunkAndSeamAccounting) {
  // 8x8 in 4x4 blocks. Fire twice at an interior site of block 0 and once
  // at a seam site of block 1; attempt everywhere we fire plus one rejected
  // attempt on a block-2 seam site.
  const Lattice lat(8, 8);
  const Partition part = Partition::blocks(lat, 4, 4);
  SpatialMap map(lat.size());
  const SiteIndex interior0 = lat.index({1, 1});   // block 0 interior
  const SiteIndex seam1 = lat.index({4, 0});       // block 1 border
  const SiteIndex seam2 = lat.index({0, 4});       // block 2 border
  map.record_attempt(interior0);
  map.record_fire(interior0);
  map.record_attempt(interior0);
  map.record_fire(interior0);
  map.record_attempt(seam1);
  map.record_fire(seam1);
  map.record_attempt(seam2);

  const SpatialSummary sum = summarize(map, part, nn_offsets());
  ASSERT_EQ(sum.per_chunk.size(), 4u);
  EXPECT_EQ(sum.per_chunk[part.chunk_of(interior0)].fires, 2u);
  EXPECT_EQ(sum.per_chunk[part.chunk_of(seam1)].fires, 1u);
  EXPECT_EQ(sum.per_chunk[part.chunk_of(seam2)].attempts, 1u);
  EXPECT_EQ(sum.per_chunk[part.chunk_of(seam2)].fires, 0u);
  // Rates per chunk: {2, 1, 0, 0} / 16; imbalance = max / mean = 2 / 0.75.
  EXPECT_DOUBLE_EQ(sum.chunk_fire_imbalance, (2.0 / 16.0) / (0.75 / 16.0));
  EXPECT_EQ(sum.seam_fires, 1u);
  EXPECT_EQ(sum.interior_fires, 2u);
  EXPECT_EQ(sum.seam_attempts, 2u);
  EXPECT_EQ(sum.interior_attempts, 2u);
  // (1 / 48) / (2 / 16)
  EXPECT_DOUBLE_EQ(sum.seam_interior_fire_ratio, (1.0 / 48.0) / (2.0 / 16.0));
}

#endif  // CASURF_NO_METRICS

TEST(HeatmapJson, NullMapAndSummaryEmitNulls) {
  const Configuration cfg(Lattice(3, 2), 2, 1);
  const Value doc =
      Value::parse(heatmap_json(cfg, {"*", "A"}, 1.5, nullptr, nullptr));
  EXPECT_EQ(doc.string_or("schema", ""), "casurf-heatmap/1");
  EXPECT_EQ(doc.at("width").as_u64(), 3u);
  EXPECT_EQ(doc.at("height").as_u64(), 2u);
  EXPECT_DOUBLE_EQ(doc.number_or("time", 0), 1.5);
  ASSERT_EQ(doc.at("species").items().size(), 2u);
  EXPECT_EQ(doc.at("species").items()[1].as_string(), "A");
  ASSERT_EQ(doc.at("occupancy").items().size(), 6u);
  EXPECT_EQ(doc.at("occupancy").items()[0].as_u64(), 1u);
  EXPECT_TRUE(doc.at("attempts").is_null());
  EXPECT_TRUE(doc.at("fires").is_null());
  EXPECT_TRUE(doc.at("summary").is_null());
}

TEST(HeatmapJson, GridsAndSummaryRoundTrip) {
  const Lattice lat(4, 4);
  Configuration cfg(lat, 2, 0);
  cfg.set(5, 1);
  SpatialMap map(lat.size());
  map.record_attempt(5);
  map.record_fire(5);
  const Partition part = Partition::blocks(lat, 2, 2);
  const SpatialSummary sum = summarize(map, part, nn_offsets());
  const Value doc =
      Value::parse(heatmap_json(cfg, {"*", "A"}, 2.0, &map, &sum));
  ASSERT_TRUE(doc.at("attempts").is_array());
  ASSERT_EQ(doc.at("attempts").items().size(), 16u);
  ASSERT_TRUE(doc.at("summary").is_object());
  EXPECT_EQ(doc.at("summary").at("chunks").as_u64(), 4u);
  EXPECT_EQ(doc.at("summary").at("per_chunk").items().size(), 4u);
#ifndef CASURF_NO_METRICS
  EXPECT_EQ(doc.at("attempts").items()[5].as_u64(), 1u);
  EXPECT_EQ(doc.at("fires").items()[5].as_u64(), 1u);
#endif
}

TEST(HeatmapJson, RejectsMismatchedMap) {
  const Configuration cfg(Lattice(4, 4), 2, 0);
  const SpatialMap wrong(9);
  EXPECT_THROW(heatmap_json(cfg, {"*", "A"}, 0, &wrong, nullptr),
               std::invalid_argument);
}

TEST(ActivityPpm, HeaderSizeAndColdStart) {
  const Lattice lat(5, 3);
  SpatialMap map(lat.size());
  const std::string path = testing::TempDir() + "/casurf_activity_cold.ppm";
  write_activity_ppm(path, map, lat, ActivityChannel::kAttempts);
  const std::string body = io::read_file(path);
  const std::string header = "P6\n5 3\n255\n";
  ASSERT_EQ(body.size(), header.size() + 3u * 15u);
  EXPECT_EQ(body.substr(0, header.size()), header);
  // Nothing recorded: every pixel black.
  for (std::size_t i = header.size(); i < body.size(); ++i) {
    EXPECT_EQ(body[i], '\0');
  }
}

#ifndef CASURF_NO_METRICS

TEST(ActivityPpm, HottestSiteIsWhite) {
  const Lattice lat(2, 2);
  SpatialMap map(lat.size());
  map.record_fire(3);
  const std::string path = testing::TempDir() + "/casurf_activity_hot.ppm";
  write_activity_ppm(path, map, lat, ActivityChannel::kFires);
  const std::string body = io::read_file(path);
  const std::string header = "P6\n2 2\n255\n";
  ASSERT_EQ(body.size(), header.size() + 12u);
  // Site 3 holds the channel maximum: full white. Site 0 never fired: black.
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(static_cast<unsigned char>(body[header.size() + 9 + c]), 255u);
    EXPECT_EQ(static_cast<unsigned char>(body[header.size() + c]), 0u);
  }
}

/// Every engine must agree with its own execution counter: one fire
/// recorded per executed reaction, and at least as many attempts.
TEST(SimulatorIntegration, FiresMatchExecutedCounter) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  for (const Algorithm algo :
       {Algorithm::kRsm, Algorithm::kVssm, Algorithm::kFrm, Algorithm::kNdca,
        Algorithm::kPndca, Algorithm::kLPndca, Algorithm::kTPndca,
        Algorithm::kParallelPndca}) {
    SimulationOptions opt;
    opt.algorithm = algo;
    opt.seed = 17;
    opt.threads = 3;
    auto sim = make_simulator(
        zgb.model, Configuration(Lattice(24, 24), 3, zgb.vacant), opt);
    SpatialMap map(sim->configuration().size());
    sim->set_spatial(&map);
    sim->advance_to(3.0);
    EXPECT_EQ(map.total_fires(), sim->counters().executed) << sim->name();
    EXPECT_GE(map.total_attempts(), map.total_fires()) << sim->name();
    EXPECT_GT(map.total_fires(), 0u) << sim->name();
  }
}

#endif  // CASURF_NO_METRICS

}  // namespace
}  // namespace casurf::obs
