#include "lattice/species.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace casurf {
namespace {

TEST(SpeciesSet, AddAndLookup) {
  SpeciesSet set;
  const Species vac = set.add("*");
  const Species co = set.add("CO");
  EXPECT_EQ(vac, 0);
  EXPECT_EQ(co, 1);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.name(vac), "*");
  EXPECT_EQ(set.name(co), "CO");
}

TEST(SpeciesSet, ConstructFromNames) {
  const SpeciesSet set({"*", "A", "B"});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.require("B"), 2);
}

TEST(SpeciesSet, FindMissingReturnsNullopt) {
  const SpeciesSet set({"*", "A"});
  EXPECT_FALSE(set.find("Z").has_value());
  EXPECT_EQ(set.find("A").value(), 1);
}

TEST(SpeciesSet, RequireMissingThrows) {
  const SpeciesSet set({"*"});
  EXPECT_THROW((void)set.require("CO"), std::out_of_range);
}

TEST(SpeciesSet, DuplicateNameThrows) {
  SpeciesSet set;
  set.add("A");
  EXPECT_THROW(set.add("A"), std::invalid_argument);
}

TEST(SpeciesSet, CapacityLimit32) {
  SpeciesSet set;
  for (int i = 0; i < 32; ++i) set.add("s" + std::to_string(i));
  EXPECT_THROW(set.add("one_too_many"), std::invalid_argument);
}

TEST(SpeciesSet, AllMask) {
  EXPECT_EQ(SpeciesSet({"a"}).all_mask(), 0b1u);
  EXPECT_EQ(SpeciesSet({"a", "b", "c"}).all_mask(), 0b111u);
  SpeciesSet full;
  for (int i = 0; i < 32; ++i) full.add("s" + std::to_string(i));
  EXPECT_EQ(full.all_mask(), ~SpeciesMask{0});
}

TEST(SpeciesMask, BitOperations) {
  const SpeciesMask m = species_bit(0) | species_bit(3);
  EXPECT_TRUE(mask_contains(m, 0));
  EXPECT_FALSE(mask_contains(m, 1));
  EXPECT_FALSE(mask_contains(m, 2));
  EXPECT_TRUE(mask_contains(m, 3));
}

}  // namespace
}  // namespace casurf
