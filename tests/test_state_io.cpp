#include "core/state_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace casurf {
namespace {

TEST(StateIo, RoundTripsEveryPrimitive) {
  StateWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.str("hello");
  const std::uint8_t raw[3] = {1, 2, 3};
  w.bytes(raw, sizeof raw);

  StateReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "hello");
  std::uint8_t out[3] = {};
  r.bytes(out, sizeof out);
  EXPECT_EQ(std::memcmp(out, raw, sizeof raw), 0);
  EXPECT_TRUE(r.at_end());
}

TEST(StateIo, DoublesAreBitExact) {
  // The values the text route mangles: negative zero, NaN payloads,
  // denormals, and long mantissas.
  const double cases[] = {-0.0, std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::denorm_min(),
                          0.1 + 0.2, 1.0 / 3.0,
                          std::numeric_limits<double>::infinity()};
  StateWriter w;
  for (const double v : cases) w.f64(v);
  StateReader r(w.buffer());
  for (const double v : cases) {
    std::uint64_t expect = 0, got = 0;
    const double read = r.f64();
    std::memcpy(&expect, &v, 8);
    std::memcpy(&got, &read, 8);
    EXPECT_EQ(got, expect);
  }
}

TEST(StateIo, VectorsRoundTripWithLengthCheck) {
  StateWriter w;
  w.vec_u64(std::vector<std::uint32_t>{7, 8, 9});
  w.vec_f64({1.5, -2.5});
  StateReader r(w.buffer());
  EXPECT_EQ((r.vec_u64<std::uint32_t>(3, "u")), (std::vector<std::uint32_t>{7, 8, 9}));
  EXPECT_EQ(r.vec_f64(2, "f"), (std::vector<double>{1.5, -2.5}));

  StateReader wrong(w.buffer());
  EXPECT_THROW((void)wrong.vec_u64<std::uint32_t>(4, "u"), StateFormatError);
}

TEST(StateIo, TruncatedInputThrowsNotCrashes) {
  StateWriter w;
  w.u64(1);
  w.str("abcdef");
  // Every proper prefix must fail loudly.
  for (std::size_t cut = 0; cut < w.size(); ++cut) {
    StateReader r(std::span(w.buffer().data(), cut));
    EXPECT_THROW(
        {
          (void)r.u64();
          (void)r.str();
        },
        StateFormatError)
        << "prefix of " << cut << " bytes";
  }
}

TEST(StateIo, SectionMarkersCatchMisalignment) {
  StateWriter w;
  w.section("alpha");
  w.u64(1);
  StateReader ok(w.buffer());
  ok.expect_section("alpha");
  EXPECT_EQ(ok.u64(), 1u);

  StateReader wrong_name(w.buffer());
  EXPECT_THROW(wrong_name.expect_section("beta"), StateFormatError);

  StateWriter plain;
  plain.u64(5);
  StateReader no_marker(plain.buffer());
  EXPECT_THROW(no_marker.expect_section("alpha"), StateFormatError);
}

TEST(StateIo, CorruptVectorLengthRejectedBeforeAllocation) {
  // A bit-flipped length must not trigger a huge allocation: the element
  // count is checked against the remaining stream first.
  StateWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max());  // claimed length
  StateReader r(w.buffer());
  // Rewind-style: feed the same buffer as if it were a vector header.
  StateReader v(w.buffer());
  EXPECT_THROW((void)v.vec_u64<std::uint64_t>(SIZE_MAX, "v"), StateFormatError);
  (void)r;
}

TEST(StateIo, ImplausibleStringLengthRejected) {
  StateWriter w;
  w.u64(std::uint64_t{1} << 40);
  StateReader r(w.buffer());
  EXPECT_THROW((void)r.str(), StateFormatError);
}

TEST(StateIo, ExpectEndFlagsTrailingBytes) {
  StateWriter w;
  w.u64(1);
  w.u8(0);
  StateReader r(w.buffer());
  (void)r.u64();
  EXPECT_FALSE(r.at_end());
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.expect_end(), StateFormatError);
}

TEST(StateIo, LittleEndianLayoutIsStable) {
  // The on-disk format is fixed little-endian regardless of host order —
  // checkpoints are portable across machines.
  StateWriter w;
  w.u32(0x11223344);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x44);
  EXPECT_EQ(w.buffer()[1], 0x33);
  EXPECT_EQ(w.buffer()[2], 0x22);
  EXPECT_EQ(w.buffer()[3], 0x11);
}

}  // namespace
}  // namespace casurf
