#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace casurf {
namespace {

TEST(ThreadPool, SizeReflectsRequestedThreads) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(3).size(), 3u);
  EXPECT_GE(ThreadPool(0).size(), 1u);  // auto-detect, at least one
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1037;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](unsigned, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, WorkerIdsInRange) {
  ThreadPool pool(3);
  std::atomic<unsigned> max_id{0};
  pool.parallel_for(100, [&](unsigned tid, std::size_t, std::size_t) {
    unsigned cur = max_id.load();
    while (tid > cur && !max_id.compare_exchange_weak(cur, tid)) {
    }
    EXPECT_LT(tid, 3u);
  });
  EXPECT_LT(max_id.load(), 3u);
}

TEST(ThreadPool, HandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](unsigned, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SmallJobsInvokeOnlyLeadingWorkersWithWork) {
  // active = min(n, size()): a 3-item job on an 8-worker pool must run the
  // body on workers 0..2 only, each with a non-empty slice. The regression
  // this guards is the old one-slice-per-worker split, where five surplus
  // workers were woken, re-locked the mutex, and decremented the barrier
  // for nothing — and callers could observe empty [b, e) slices.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> invoked(8);
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(3, [&](unsigned tid, std::size_t b, std::size_t e) {
      EXPECT_LT(b, e) << "empty slice handed to worker " << tid;
      invoked[tid].fetch_add(1);
    });
  }
  for (unsigned tid = 0; tid < 8; ++tid) {
    EXPECT_EQ(invoked[tid].load(), tid < 3 ? 20 : 0) << "worker " << tid;
  }
}

TEST(ThreadPool, AlternatingSmallAndLargeJobs) {
  // Surplus workers skipping a small job must rejoin the next full one.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> small{0}, large{0};
    pool.parallel_for(2, [&](unsigned, std::size_t b, std::size_t e) {
      small.fetch_add(e - b);
    });
    pool.parallel_for(1000, [&](unsigned, std::size_t b, std::size_t e) {
      large.fetch_add(e - b);
    });
    ASSERT_EQ(small.load(), 2u);
    ASSERT_EQ(large.load(), 1000u);
  }
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](unsigned, std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RepeatedCallsReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(50, [&](unsigned, std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), 200u * 50u);
}

TEST(ThreadPool, SlicesAreContiguousAndOrdered) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> slices(4, {0, 0});
  pool.parallel_for(103, [&](unsigned tid, std::size_t b, std::size_t e) {
    slices[tid] = {b, e};
  });
  std::size_t covered = 0;
  for (unsigned t = 0; t < 4; ++t) {
    EXPECT_EQ(slices[t].first, covered);
    EXPECT_GE(slices[t].second, slices[t].first);
    covered = slices[t].second;
  }
  EXPECT_EQ(covered, 103u);
}

TEST(ThreadPool, ConcurrentSubmittersDoNotCorruptEachOther) {
  // Two threads hammering one pool. The regression this guards: without
  // the submission mutex, concurrent parallel_for calls clobbered
  // body_/job_n_/remaining_/generation_, so workers ran a mix of both
  // bodies against one barrier count — lost slices, double-run slices,
  // or a hang. Every round of each submitter must see exactly its own
  // item count. Runs under TSan via the "parallel" ctest label.
  ThreadPool pool(4);
  constexpr int kRounds = 300;
  const auto hammer = [&](std::size_t n, std::atomic<std::uint64_t>& total,
                          std::atomic<bool>& ok) {
    for (int round = 0; round < kRounds; ++round) {
      std::atomic<std::uint64_t> this_round{0};
      pool.parallel_for(n, [&](unsigned, std::size_t b, std::size_t e) {
        this_round.fetch_add(e - b);
      });
      if (this_round.load() != n) ok.store(false);
      total.fetch_add(this_round.load());
    }
  };
  std::atomic<std::uint64_t> total_a{0}, total_b{0};
  std::atomic<bool> ok_a{true}, ok_b{true};
  std::thread a([&] { hammer(777, total_a, ok_a); });
  std::thread b([&] { hammer(1031, total_b, ok_b); });
  a.join();
  b.join();
  EXPECT_TRUE(ok_a.load());
  EXPECT_TRUE(ok_b.load());
  EXPECT_EQ(total_a.load(), static_cast<std::uint64_t>(kRounds) * 777u);
  EXPECT_EQ(total_b.load(), static_cast<std::uint64_t>(kRounds) * 1031u);
}

TEST(ThreadPool, ConcurrentSubmitterExceptionStaysWithItsJob) {
  // A throwing body must surface on the thread that submitted it and leave
  // the other submitter's jobs untouched — error_ is per-job because the
  // submission lock is held across the barrier and the rethrow.
  ThreadPool pool(3);
  constexpr int kRounds = 100;
  std::atomic<int> caught{0};
  std::atomic<bool> clean_ok{true};
  std::thread thrower([&] {
    for (int round = 0; round < kRounds; ++round) {
      try {
        pool.parallel_for(64, [&](unsigned, std::size_t b, std::size_t) {
          if (b == 0) throw std::runtime_error("slice failed");
        });
      } catch (const std::runtime_error&) {
        caught.fetch_add(1);
      }
    }
  });
  std::thread clean([&] {
    for (int round = 0; round < kRounds; ++round) {
      std::atomic<std::uint64_t> sum{0};
      try {
        pool.parallel_for(64, [&](unsigned, std::size_t b, std::size_t e) {
          sum.fetch_add(e - b);
        });
      } catch (...) {
        clean_ok.store(false);  // inherited a foreign job's exception
      }
      if (sum.load() != 64) clean_ok.store(false);
    }
  });
  thrower.join();
  clean.join();
  EXPECT_EQ(caught.load(), kRounds);
  EXPECT_TRUE(clean_ok.load());
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<std::uint64_t> partial(pool.size(), 0);
  pool.parallel_for(n, [&](unsigned tid, std::size_t b, std::size_t e) {
    std::uint64_t s = 0;
    for (std::size_t i = b; i < e; ++i) s += i;
    partial[tid] = s;
  });
  const std::uint64_t total = std::accumulate(partial.begin(), partial.end(),
                                              std::uint64_t{0});
  EXPECT_EQ(total, n * (n - 1) / 2);
}

}  // namespace
}  // namespace casurf
