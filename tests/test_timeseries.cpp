#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace casurf {
namespace {

TEST(TimeSeries, AppendAndAccess) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.append(0.0, 1.0);
  ts.append(1.0, 2.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.time(1), 1.0);
  EXPECT_DOUBLE_EQ(ts.value(1), 2.0);
}

TEST(TimeSeries, AppendEnforcesMonotoneTime) {
  TimeSeries ts;
  ts.append(1.0, 0.0);
  EXPECT_THROW(ts.append(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ts.append(0.5, 0.0), std::invalid_argument);
}

TEST(TimeSeries, ConstructorValidates) {
  EXPECT_THROW(TimeSeries({0.0, 1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(TimeSeries({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_NO_THROW(TimeSeries({0.0, 1.0}, {1.0, 2.0}));
}

TEST(TimeSeries, LinearInterpolation) {
  const TimeSeries ts({0.0, 2.0}, {0.0, 4.0});
  EXPECT_DOUBLE_EQ(ts.at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(ts.at(0.5), 1.0);
}

TEST(TimeSeries, InterpolationClampsOutsideDomain) {
  const TimeSeries ts({1.0, 2.0}, {3.0, 5.0});
  EXPECT_DOUBLE_EQ(ts.at(0.0), 3.0);
  EXPECT_DOUBLE_EQ(ts.at(10.0), 5.0);
}

TEST(TimeSeries, AtEmptyThrows) {
  const TimeSeries ts;
  EXPECT_THROW((void)ts.at(0.0), std::out_of_range);
}

TEST(TimeSeries, ResampleUniformGrid) {
  const TimeSeries ts({0.0, 10.0}, {0.0, 10.0});
  const TimeSeries grid = ts.resample(0.0, 10.0, 11);
  ASSERT_EQ(grid.size(), 11u);
  for (std::size_t i = 0; i < 11; ++i) {
    EXPECT_NEAR(grid.time(i), static_cast<double>(i), 1e-12);
    EXPECT_NEAR(grid.value(i), static_cast<double>(i), 1e-12);
  }
}

TEST(TimeSeries, ResampleRejectsDegenerateWindow) {
  const TimeSeries ts({0.0, 10.0}, {0.0, 10.0});
  EXPECT_THROW((void)ts.resample(5.0, 5.0, 4), std::invalid_argument);
  EXPECT_THROW((void)ts.resample(7.0, 3.0, 4), std::invalid_argument);
}

TEST(TimeSeries, ResampleTinyWindowAtLargeTimeDropsCollidedPoints) {
  // At t ~ 1e16 the double spacing is 2, so a 100-point grid over a width-4
  // window collides most of its points. Pre-fix, the duplicate grid times
  // hit TimeSeries::append's "time must increase" throw; now collided
  // points are dropped and both endpoints survive.
  const double t0 = 1e16;
  const double t1 = t0 + 4;
  const TimeSeries ts({t0, t1}, {1.0, 3.0});
  const TimeSeries grid = ts.resample(t0, t1, 100);
  EXPECT_GE(grid.size(), 2u);
  EXPECT_LE(grid.size(), 100u);
  EXPECT_EQ(grid.times().front(), t0);
  EXPECT_EQ(grid.times().back(), t1);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid.time(i), grid.time(i - 1));
  }
}

TEST(EnsembleMean, TinyOverlapAtLargeTimeDoesNotThrow) {
  const double t0 = 1e16;
  const TimeSeries a({t0 - 10, t0 + 4}, {1.0, 1.0});
  const TimeSeries b({t0, t0 + 20}, {3.0, 3.0});
  const TimeSeries mean = ensemble_mean({a, b}, 50);
  EXPECT_EQ(mean.times().front(), t0);
  EXPECT_EQ(mean.times().back(), t0 + 4);
  for (std::size_t i = 0; i < mean.size(); ++i) {
    EXPECT_DOUBLE_EQ(mean.value(i), 2.0);
  }
}

TEST(TimeSeries, MeanAndStddevAfter) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.append(i, i < 5 ? 100.0 : (i % 2 ? 1.0 : 3.0));
  // Values from t >= 5: 1, 3, 1, 3, 1 -> mean 1.8.
  EXPECT_NEAR(ts.mean_after(5.0), 1.8, 1e-12);
  EXPECT_NEAR(ts.stddev_after(5.0), std::sqrt((3 * 0.64 + 2 * 1.44) / 4.0), 1e-12);
}

TEST(TimeSeries, MeanAfterBeyondEndIsNan) {
  const TimeSeries ts({0.0, 1.0}, {1.0, 2.0});
  EXPECT_TRUE(std::isnan(ts.mean_after(5.0)));
}

TEST(TimeSeries, StddevAfterNeedsTwoSamples) {
  const TimeSeries ts({0.0, 1.0, 2.0}, {1.0, 2.0, 3.0});
  // One qualifying sample (t >= 2) or none (t >= 5): the sample standard
  // deviation is undefined — NaN, not a spurious "perfectly converged" 0.
  EXPECT_TRUE(std::isnan(ts.stddev_after(2.0)));
  EXPECT_TRUE(std::isnan(ts.stddev_after(5.0)));
  // Two samples is the minimum defined case.
  EXPECT_NEAR(ts.stddev_after(1.0), std::sqrt(0.5), 1e-12);
}

TEST(EnsembleMean, AveragesAcrossRuns) {
  const TimeSeries a({0.0, 1.0, 2.0}, {0.0, 2.0, 4.0});
  const TimeSeries b({0.0, 1.0, 2.0}, {4.0, 2.0, 0.0});
  const TimeSeries mean = ensemble_mean({a, b}, 5);
  for (std::size_t i = 0; i < mean.size(); ++i) {
    EXPECT_NEAR(mean.value(i), 2.0, 1e-12);
  }
}

TEST(EnsembleMean, UsesOverlapOfDomains) {
  const TimeSeries a({0.0, 10.0}, {1.0, 1.0});
  const TimeSeries b({5.0, 15.0}, {3.0, 3.0});
  const TimeSeries mean = ensemble_mean({a, b}, 3);
  EXPECT_DOUBLE_EQ(mean.times().front(), 5.0);
  EXPECT_DOUBLE_EQ(mean.times().back(), 10.0);
  EXPECT_DOUBLE_EQ(mean.value(0), 2.0);
}

TEST(EnsembleMean, RejectsBadInput) {
  EXPECT_THROW((void)ensemble_mean({}), std::invalid_argument);
  const TimeSeries a({0.0, 1.0}, {0.0, 0.0});
  const TimeSeries late({5.0, 6.0}, {0.0, 0.0});
  EXPECT_THROW((void)ensemble_mean({a, late}), std::invalid_argument);
}

TEST(MeanAbsDifference, ZeroForIdenticalSeries) {
  const TimeSeries a({0.0, 1.0, 2.0}, {1.0, 5.0, 3.0});
  EXPECT_NEAR(mean_abs_difference(a, a), 0.0, 1e-12);
}

TEST(MeanAbsDifference, ConstantOffset) {
  const TimeSeries a({0.0, 10.0}, {1.0, 1.0});
  const TimeSeries b({0.0, 10.0}, {1.5, 1.5});
  EXPECT_NEAR(mean_abs_difference(a, b), 0.5, 1e-12);
}

}  // namespace
}  // namespace casurf
