#include "ca/tpndca.hpp"

#include <gtest/gtest.h>

#include "models/zgb.hpp"
#include "partition/conflict.hpp"

namespace casurf {
namespace {

TEST(TPndca, BuildsFromZgbTypePartition) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  auto subsets = make_type_partition(lat, zgb.model);
  TPndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant),
                      std::move(subsets), 1);
  EXPECT_EQ(sim.subsets().size(), 2u);
  EXPECT_EQ(sim.sweeps_per_step(), 2u);  // auto: both subsets have 2 chunks
  EXPECT_EQ(sim.name(), "TPNDCA");
}

TEST(TPndca, RejectsEmptySubsets) {
  auto zgb = models::make_zgb();
  EXPECT_THROW(TPndcaSimulator(zgb.model, Configuration(Lattice(4, 4), 3, zgb.vacant),
                               {}, 1),
               std::invalid_argument);
}

TEST(TPndca, StepAdvancesTimeByMeanMcStep) {
  auto zgb = models::make_zgb();  // K = 1 + 1 + 2 = 4
  const Lattice lat(10, 10);
  TPndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant),
                      make_type_partition(lat, zgb.model), 2);
  sim.mc_step();
  EXPECT_NEAR(sim.time(), 1.0 / zgb.model.total_rate(), 1e-12);
}

TEST(TPndca, SameSeedSameTrajectory) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  TPndcaSimulator a(zgb.model, Configuration(lat, 3, zgb.vacant),
                    make_type_partition(lat, zgb.model), 3);
  TPndcaSimulator b(zgb.model, Configuration(lat, 3, zgb.vacant),
                    make_type_partition(lat, zgb.model), 3);
  for (int i = 0; i < 50; ++i) {
    a.mc_step();
    b.mc_step();
  }
  EXPECT_EQ(a.configuration(), b.configuration());
}

TEST(TPndca, SweepIsConflictFreeWithinChunk) {
  // Structural property behind the algorithm: the per-subset partitions
  // must separate each member type from itself.
  auto zgb = models::make_zgb();
  const Lattice lat(12, 12);
  const auto subsets = make_type_partition(lat, zgb.model);
  for (const TypeSubset& sub : subsets) {
    for (const ReactionIndex i : sub.types) {
      const auto offsets = self_conflict_offsets(zgb.model.reaction(i));
      EXPECT_TRUE(verify_partition(sub.chunks, offsets))
          << "type " << zgb.model.reaction(i).name();
    }
  }
}

TEST(TPndca, ZgbStaysReactiveAtModerateY) {
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(24, 24);
  TPndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant),
                      make_type_partition(lat, zgb.model), 4);
  for (int i = 0; i < 400; ++i) sim.mc_step();
  const double co = sim.configuration().coverage(zgb.co);
  const double o = sim.configuration().coverage(zgb.o);
  EXPECT_LE(co + o, 1.0);
  EXPECT_GT(sim.counters().executed, 0u);
}

TEST(TPndca, ExecutionCountsRoughlyMatchChannelRates) {
  // Over a long run at a steady state, the CO adsorption and CO2 formation
  // channels must balance (every adsorbed CO eventually leaves as CO2 —
  // there is no CO desorption in ZGB).
  auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(24, 24);
  TPndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant),
                      make_type_partition(lat, zgb.model), 5);
  for (int i = 0; i < 2000; ++i) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  const std::uint64_t co_ads = per[0];
  std::uint64_t co2 = 0;
  for (ReactionIndex i = 3; i < 7; ++i) co2 += per[i];
  // CO on surface = adsorbed - reacted.
  EXPECT_EQ(sim.configuration().count(zgb.co),
            co_ads - co2);
}

TEST(TPndca, ExplicitSweepCountHonored) {
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  TPndcaSimulator sim(zgb.model, Configuration(lat, 3, zgb.vacant),
                      make_type_partition(lat, zgb.model), 6, 7);
  EXPECT_EQ(sim.sweeps_per_step(), 7u);
  sim.mc_step();
  // 7 sweeps of one 50-site chunk each.
  EXPECT_EQ(sim.counters().trials, 350u);
}

}  // namespace
}  // namespace casurf
