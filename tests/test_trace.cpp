// TraceRing/Tracer units: wrap-around drop accounting, oldest-first export,
// the null-ring fast path, and the Chrome Trace Event JSON (validated with
// the same parser casurf_report uses — including the footer that keeps
// ring-wrap loss visible).

#include <gtest/gtest.h>

#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace casurf::obs {
namespace {

TEST(TraceRing, NullRingScopedSpanIsANoOp) {
  // The "tracing off" path: must not crash, must not record anywhere.
  const ScopedSpan span(nullptr, "phase", 1.0, 2);
}

#ifndef CASURF_NO_METRICS

TEST(TraceRing, RecordsSpansAndInstants) {
  TraceRing ring(0, 8);
  ring.span("a", 100, 50, 0.5, 1);
  ring.instant("b", 0.75, 2);
  EXPECT_EQ(ring.recorded(), 2u);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_EQ(events[0].start_ns, 100u);
  EXPECT_EQ(events[0].dur_ns, 50u);
  EXPECT_DOUBLE_EQ(events[0].sim_time, 0.5);
  EXPECT_EQ(events[0].step, 1u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kSpan);
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kInstant);
}

TEST(TraceRing, WrapOverwritesOldestAndCountsDrops) {
  TraceRing ring(3, 4);
  static const char* const names[] = {"e0", "e1", "e2", "e3", "e4",
                                      "e5", "e6", "e7", "e8", "e9"};
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.span(names[i], i * 10, 1, 0.0, i);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // The survivors are the newest four, oldest first.
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_STREQ(events[i].name, names[6 + i]);
    EXPECT_EQ(events[i].step, 6 + i);
  }
}

TEST(TraceRing, ZeroCapacityIsClampedToOne) {
  TraceRing ring(0, 0);
  ring.span("x", 1, 1, 0, 0);
  ring.span("y", 2, 1, 0, 1);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_STREQ(ring.events()[0].name, "y");
}

TEST(Tracer, ChromeJsonCarriesEventsNamesAndFooter) {
  Tracer tracer(4);
  tracer.ring(0).span("main/step", 1000, 2000, 0.5, 3);
  tracer.ring(0).instant("main/mark", 0.6, 4);
  tracer.ring(1).span("worker/busy", 1500, 500, 0.5, 3);
  tracer.set_thread_name(0, "main");
  tracer.set_thread_name(1, "worker0");

  const json::Value doc = json::Value::parse(tracer.chrome_trace_json());
  const json::Value& footer = doc.at("otherData");
  EXPECT_EQ(footer.at("schema").as_string(), "casurf-trace/1");
  EXPECT_EQ(footer.at("recorded_events").as_u64(), 3u);
  EXPECT_EQ(footer.at("dropped_events").as_u64(), 0u);
  EXPECT_EQ(footer.at("ring_capacity").as_u64(), 4u);
  ASSERT_EQ(footer.at("rings").items().size(), 2u);
  EXPECT_EQ(footer.at("rings").items()[0].at("name").as_string(), "main");
  EXPECT_EQ(footer.at("rings").items()[1].at("name").as_string(), "worker0");

  std::size_t complete = 0, instants = 0, metadata = 0;
  bool saw_step = false;
  for (const json::Value& e : doc.at("traceEvents").items()) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "X") {
      ++complete;
      if (e.at("name").as_string() == "main/step") {
        saw_step = true;
        EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 2.0);  // 2000 ns = 2 µs
        EXPECT_DOUBLE_EQ(e.at("args").at("sim_time").as_number(), 0.5);
        EXPECT_EQ(e.at("args").at("step").as_u64(), 3u);
        EXPECT_EQ(e.at("tid").as_u64(), 0u);
      }
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.at("s").as_string(), "t");
    } else if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(metadata, 2u);
  EXPECT_TRUE(saw_step);
}

TEST(Tracer, FooterDropCounterSurvivesRingWrap) {
  Tracer tracer(2);
  for (std::uint64_t i = 0; i < 7; ++i) tracer.ring(0).span("s", i, 1, 0, i);
  EXPECT_EQ(tracer.total_recorded(), 7u);
  EXPECT_EQ(tracer.total_dropped(), 5u);
  const json::Value doc = json::Value::parse(tracer.chrome_trace_json());
  EXPECT_EQ(doc.at("otherData").at("recorded_events").as_u64(), 7u);
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_u64(), 5u);
  EXPECT_EQ(doc.at("otherData").at("rings").items()[0].at("dropped").as_u64(), 5u);
}

TEST(Tracer, RingReferencesAreStable) {
  Tracer tracer;
  TraceRing& r0 = tracer.ring(0);
  // Creating more rings must not invalidate earlier references (the
  // simulators hold raw pointers across the whole run).
  for (unsigned tid = 1; tid < 32; ++tid) tracer.ring(tid);
  EXPECT_EQ(&r0, &tracer.ring(0));
  EXPECT_EQ(tracer.ring_capacity(), Tracer::kDefaultCapacity);
}

#else  // CASURF_NO_METRICS

TEST(TraceRing, RecordingCompilesOutUnderNoMetrics) {
  TraceRing ring(0, 8);
  ring.span("a", 100, 50, 0.5, 1);
  ring.instant("b", 0.75, 2);
  {
    const ScopedSpan span(&ring, "c", 1.0, 3);
  }
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

#endif

}  // namespace
}  // namespace casurf::obs
