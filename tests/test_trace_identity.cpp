// Tracing must be observation-only, exactly like the metrics probes:
// attaching a Tracer may not perturb any simulator's trajectory by a single
// bit. Mirrors test_metrics_identity across all eight algorithms, plus the
// threaded engine's per-worker rings (part of the TSan surface via the
// "parallel" label).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "models/zgb.hpp"
#include "obs/spatial.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_pndca.hpp"
#include "partition/coloring.hpp"

namespace casurf {
namespace {

class TraceIdentity : public ::testing::TestWithParam<Algorithm> {};

TEST_P(TraceIdentity, TrajectoryBitIdenticalWithAndWithoutTracer) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(20, 20);
  SimulationOptions opt;
  opt.algorithm = GetParam();
  opt.seed = 4321;
  opt.chunk_policy = ChunkPolicy::kRateWeighted;

  const auto run = [&](obs::Tracer* tracer) {
    auto sim = make_simulator(zgb.model, Configuration(lat, 3, zgb.vacant), opt);
    if (tracer != nullptr) sim->set_tracer(tracer);
    for (int i = 0; i < 5; ++i) sim->mc_step();
    sim->advance_to(sim->time() + 0.01);
    return sim;
  };

  obs::Tracer tracer;
  const auto bare = run(nullptr);
  const auto traced = run(&tracer);

  EXPECT_TRUE(std::ranges::equal(bare->configuration().raw(),
                                 traced->configuration().raw()));
  EXPECT_EQ(bare->time(), traced->time());
  EXPECT_EQ(bare->counters().trials, traced->counters().trials);
  EXPECT_EQ(bare->counters().executed, traced->counters().executed);
  EXPECT_EQ(bare->counters().steps, traced->counters().steps);
  EXPECT_EQ(bare->counters().executed_per_type,
            traced->counters().executed_per_type);

#ifndef CASURF_NO_METRICS
  // The traced run must have recorded spans on the main ring.
  EXPECT_GT(tracer.ring(0).recorded(), 0u);
#endif
}

// The spatial activity probe rides the same null-off pattern and carries
// the same guarantee: attaching a SpatialMap may not move the trajectory.
TEST_P(TraceIdentity, TrajectoryBitIdenticalWithAndWithoutSpatialMap) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(20, 20);
  SimulationOptions opt;
  opt.algorithm = GetParam();
  opt.seed = 4321;
  opt.chunk_policy = ChunkPolicy::kRateWeighted;

  const auto run = [&](obs::SpatialMap* map) {
    auto sim = make_simulator(zgb.model, Configuration(lat, 3, zgb.vacant), opt);
    if (map != nullptr) sim->set_spatial(map);
    for (int i = 0; i < 5; ++i) sim->mc_step();
    sim->advance_to(sim->time() + 0.01);
    return sim;
  };

  obs::SpatialMap map(lat.size());
  const auto bare = run(nullptr);
  const auto mapped = run(&map);

  EXPECT_TRUE(std::ranges::equal(bare->configuration().raw(),
                                 mapped->configuration().raw()));
  EXPECT_EQ(bare->time(), mapped->time());
  EXPECT_EQ(bare->counters().trials, mapped->counters().trials);
  EXPECT_EQ(bare->counters().executed, mapped->counters().executed);
  EXPECT_EQ(bare->counters().steps, mapped->counters().steps);
  EXPECT_EQ(bare->counters().executed_per_type,
            mapped->counters().executed_per_type);

#ifndef CASURF_NO_METRICS
  // The instrumented run must have recorded exactly its executions.
  EXPECT_EQ(map.total_fires(), mapped->counters().executed);
  EXPECT_GT(map.total_attempts(), 0u);
#else
  EXPECT_EQ(map.total_fires(), 0u);
#endif
}

TEST_P(TraceIdentity, DetachRestoresUntracedOperation) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  SimulationOptions opt;
  opt.algorithm = GetParam();
  opt.seed = 77;
  auto sim =
      make_simulator(zgb.model, Configuration(Lattice(10, 10), 3, zgb.vacant), opt);

  obs::Tracer tracer;
  sim->set_tracer(&tracer);
  sim->mc_step();
  sim->set_tracer(nullptr);
  EXPECT_EQ(sim->tracer(), nullptr);
  const std::uint64_t recorded = tracer.total_recorded();
  sim->mc_step();  // must not touch the detached tracer
  EXPECT_EQ(tracer.total_recorded(), recorded);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, TraceIdentity,
                         ::testing::Values(Algorithm::kRsm, Algorithm::kVssm,
                                           Algorithm::kFrm, Algorithm::kNdca,
                                           Algorithm::kPndca, Algorithm::kLPndca,
                                           Algorithm::kTPndca,
                                           Algorithm::kParallelPndca),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           std::string name = algorithm_name(info.param);
                           std::erase_if(name, [](char c) {
                             return (std::isalnum(static_cast<unsigned char>(c)) == 0);
                           });
                           return name;
                         });

// The 7-thread engine: bit-identity again, and the per-worker rings must
// carry both halves of the fork-join accounting (busy from the worker,
// wait appended by the coordinator after the join).
TEST(TraceIdentityThreaded, SevenWorkersBitIdenticalAndRingsPopulated) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(28, 28);
  const std::vector<Partition> parts = {make_partition(lat, zgb.model)};

  const auto run = [&](obs::Tracer* tracer) {
    ParallelPndcaEngine engine(zgb.model, Configuration(lat, 3, zgb.vacant), parts,
                               5, 7);
    if (tracer != nullptr) engine.set_tracer(tracer);
    for (int i = 0; i < 4; ++i) engine.mc_step();
    const auto raw = engine.configuration().raw();
    return std::make_pair(std::vector<unsigned char>(raw.begin(), raw.end()),
                          engine.counters().executed);
  };

  obs::Tracer tracer;
  const auto bare = run(nullptr);
  const auto traced = run(&tracer);
  EXPECT_EQ(bare.first, traced.first);
  EXPECT_EQ(bare.second, traced.second);

#ifndef CASURF_NO_METRICS
  for (unsigned tid = 1; tid <= 7; ++tid) {
    std::uint64_t busy = 0, wait = 0;
    for (const obs::TraceEvent& e : tracer.ring(tid).events()) {
      if (std::string_view(e.name) == "threads/busy") ++busy;
      if (std::string_view(e.name) == "threads/wait") ++wait;
    }
    EXPECT_GT(busy, 0u) << "worker " << tid - 1 << " recorded no busy span";
    EXPECT_GT(wait, 0u) << "worker " << tid - 1 << " recorded no wait span";
    // The coordinator appends one wait span per fork-join for every worker;
    // busy spans only for workers that received a range.
    EXPECT_GE(wait, busy);
  }
#endif
}

// Threaded engine with the spatial probe: the per-site counters are written
// from worker threads (disjoint sites per chunk — TSan surface via the
// "parallel" label), and the trajectory must still replay the serial one.
TEST(TraceIdentityThreaded, SevenWorkersBitIdenticalWithSpatialMap) {
  const auto zgb = models::make_zgb(models::ZgbParams::from_y(0.45, 20.0));
  const Lattice lat(28, 28);
  const std::vector<Partition> parts = {make_partition(lat, zgb.model)};

  const auto run = [&](obs::SpatialMap* map) {
    ParallelPndcaEngine engine(zgb.model, Configuration(lat, 3, zgb.vacant), parts,
                               5, 7);
    if (map != nullptr) engine.set_spatial(map);
    for (int i = 0; i < 4; ++i) engine.mc_step();
    const auto raw = engine.configuration().raw();
    return std::make_pair(std::vector<unsigned char>(raw.begin(), raw.end()),
                          engine.counters().executed);
  };

  obs::SpatialMap map(lat.size());
  const auto bare = run(nullptr);
  const auto mapped = run(&map);
  EXPECT_EQ(bare.first, mapped.first);
  EXPECT_EQ(bare.second, mapped.second);

#ifndef CASURF_NO_METRICS
  EXPECT_EQ(map.total_fires(), mapped.second);
  EXPECT_GE(map.total_attempts(), map.total_fires());
#endif
}

}  // namespace
}  // namespace casurf
