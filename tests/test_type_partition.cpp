#include "partition/type_partition.hpp"

#include <gtest/gtest.h>

#include "models/pt100.hpp"
#include "models/zgb.hpp"
#include "partition/conflict.hpp"

namespace casurf {
namespace {

TEST(TypePartition, ZgbMatchesTableII) {
  // Table II: T0 = {Rt_CO+O^(0), Rt_CO+O^(2), Rt_O2^(0), Rt_CO},
  //           T1 = {Rt_CO+O^(1), Rt_CO+O^(3), Rt_O2^(1)}.
  auto zgb = models::make_zgb();
  const Lattice lat(10, 10);
  const auto subsets = make_type_partition(lat, zgb.model);
  ASSERT_EQ(subsets.size(), 2u);

  const auto names_of = [&](const TypeSubset& sub) {
    std::vector<std::string> names;
    for (const ReactionIndex i : sub.types) names.push_back(zgb.model.reaction(i).name());
    return names;
  };

  // Horizontal subset: +x O2 pair, the two +-x CO+O orientations, plus the
  // single-site CO adsorption folded into the first subset.
  const auto t0 = names_of(subsets[0]);
  EXPECT_EQ(subsets[0].bond, (Vec2{1, 0}));
  ASSERT_EQ(t0.size(), 4u);
  EXPECT_NE(std::find(t0.begin(), t0.end(), "O2_ads_0"), t0.end());
  EXPECT_NE(std::find(t0.begin(), t0.end(), "CO2_form_0"), t0.end());
  EXPECT_NE(std::find(t0.begin(), t0.end(), "CO2_form_2"), t0.end());
  EXPECT_NE(std::find(t0.begin(), t0.end(), "CO_ads"), t0.end());

  const auto t1 = names_of(subsets[1]);
  EXPECT_EQ(subsets[1].bond, (Vec2{0, 1}));
  ASSERT_EQ(t1.size(), 3u);
  EXPECT_NE(std::find(t1.begin(), t1.end(), "O2_ads_1"), t1.end());
  EXPECT_NE(std::find(t1.begin(), t1.end(), "CO2_form_1"), t1.end());
  EXPECT_NE(std::find(t1.begin(), t1.end(), "CO2_form_3"), t1.end());
}

TEST(TypePartition, SubsetRatesSumToModelTotal) {
  auto zgb = models::make_zgb();
  const auto subsets = make_type_partition(Lattice(10, 10), zgb.model);
  double sum = 0;
  for (const TypeSubset& s : subsets) sum += s.total_rate;
  EXPECT_DOUBLE_EQ(sum, zgb.model.total_rate());
}

TEST(TypePartition, EveryTypeAssignedExactlyOnce) {
  auto pt = models::make_pt100();
  const auto subsets = make_type_partition(Lattice(12, 12), pt.model);
  std::vector<int> seen(pt.model.num_reactions(), 0);
  for (const TypeSubset& s : subsets) {
    for (const ReactionIndex i : s.types) ++seen[i];
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << pt.model.reaction(i).name();
  }
}

TEST(TypePartition, TwoChunkPartitionsForPairSubsets) {
  auto zgb = models::make_zgb();
  const auto subsets = make_type_partition(Lattice(10, 10), zgb.model);
  for (const TypeSubset& s : subsets) {
    EXPECT_EQ(s.chunks.num_chunks(), 2u);
    // Each chunk holds half the lattice — double the concurrency of the
    // five-chunk full partition (the paper's point in section 5).
    EXPECT_EQ(s.chunks.max_chunk_size(), 50u);
  }
}

TEST(TypePartition, ChunksValidForEveryMemberTypeSelfConflicts) {
  auto pt = models::make_pt100();
  const auto subsets = make_type_partition(Lattice(12, 12), pt.model);
  for (const TypeSubset& s : subsets) {
    for (const ReactionIndex i : s.types) {
      EXPECT_TRUE(verify_partition(s.chunks,
                                   self_conflict_offsets(pt.model.reaction(i))))
          << pt.model.reaction(i).name();
    }
  }
}

TEST(TypePartition, OddLatticeFallsBackToValidPartition) {
  auto zgb = models::make_zgb();
  const auto subsets = make_type_partition(Lattice(9, 9), zgb.model);
  for (const TypeSubset& s : subsets) {
    for (const ReactionIndex i : s.types) {
      EXPECT_TRUE(verify_partition(s.chunks,
                                   self_conflict_offsets(zgb.model.reaction(i))));
    }
  }
}

TEST(TypePartition, SingleSiteOnlyModel) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", 2.0, {exact({0, 0}, 1, 0)}));
  const auto subsets = make_type_partition(Lattice(8, 8), m);
  ASSERT_EQ(subsets.size(), 1u);
  EXPECT_EQ(subsets[0].types.size(), 2u);
  EXPECT_DOUBLE_EQ(subsets[0].total_rate, 3.0);
  EXPECT_EQ(subsets[0].chunks.num_chunks(), 1u);  // no conflicts at all
}

TEST(TypePartition, LShapedTypeGetsOwnSubset) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("pair_x", 1.0, {exact({0, 0}, 1, 0), exact({1, 0}, 0, 1)}));
  m.add(ReactionType("corner", 1.0,
                     {exact({0, 0}, 1, 0), exact({1, 0}, 0, 1), exact({0, 1}, 0, 1)}));
  const auto subsets = make_type_partition(Lattice(8, 8), m);
  ASSERT_EQ(subsets.size(), 2u);
  // The corner type's subset must still be self-conflict-free.
  for (const TypeSubset& s : subsets) {
    for (const ReactionIndex i : s.types) {
      EXPECT_TRUE(verify_partition(s.chunks, self_conflict_offsets(m.reaction(i))));
    }
  }
}

TEST(TypePartition, EmptyModelThrows) {
  const ReactionModel m(SpeciesSet({"*"}));
  EXPECT_THROW((void)make_type_partition(Lattice(4, 4), m), std::invalid_argument);
}

}  // namespace
}  // namespace casurf
