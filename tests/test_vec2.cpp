#include "lattice/vec2.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace casurf {
namespace {

TEST(Vec2, DefaultIsOrigin) {
  constexpr Vec2 v{};
  EXPECT_EQ(v.x, 0);
  EXPECT_EQ(v.y, 0);
}

TEST(Vec2, Arithmetic) {
  constexpr Vec2 a{2, -3};
  constexpr Vec2 b{-1, 5};
  EXPECT_EQ(a + b, (Vec2{1, 2}));
  EXPECT_EQ(a - b, (Vec2{3, -8}));
  EXPECT_EQ(-a, (Vec2{-2, 3}));
}

TEST(Vec2, AdditionIsCommutativeAndAssociative) {
  const Vec2 a{7, 1}, b{-4, 9}, c{3, -2};
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST(Vec2, Equality) {
  EXPECT_EQ((Vec2{1, 2}), (Vec2{1, 2}));
  EXPECT_NE((Vec2{1, 2}), (Vec2{2, 1}));
}

TEST(Vec2, OrderingIsLexicographic) {
  EXPECT_LT((Vec2{0, 5}), (Vec2{1, 0}));
  EXPECT_LT((Vec2{1, 0}), (Vec2{1, 1}));
}

TEST(Vec2, L1Norm) {
  EXPECT_EQ((Vec2{0, 0}).l1(), 0);
  EXPECT_EQ((Vec2{3, -4}).l1(), 7);
  EXPECT_EQ((Vec2{-2, -2}).l1(), 4);
}

TEST(Vec2, HashDistinguishesComponents) {
  // (x, y) and (y, x) must not collide systematically.
  std::unordered_set<Vec2> set;
  for (int x = -10; x <= 10; ++x) {
    for (int y = -10; y <= 10; ++y) set.insert(Vec2{x, y});
  }
  EXPECT_EQ(set.size(), 21u * 21u);
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{3, -7};
  EXPECT_EQ(os.str(), "(3,-7)");
}

}  // namespace
}  // namespace casurf
