#include "dmc/vssm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/zgb.hpp"

namespace casurf {
namespace {

ReactionModel ads_des_model(double k_a, double k_d) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", k_a, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", k_d, {exact({0, 0}, 1, 0)}));
  return m;
}

TEST(Vssm, InitialEnabledSetsMatchBruteForce) {
  auto zgb = models::make_zgb();
  Configuration cfg(Lattice(8, 8), 3, zgb.vacant);
  // Seed a few particles so several types are enabled.
  cfg.set(Vec2{1, 1}, zgb.co);
  cfg.set(Vec2{2, 1}, zgb.o);
  cfg.set(Vec2{5, 5}, zgb.o);
  VssmSimulator sim(zgb.model, cfg, 1);
  for (ReactionIndex i = 0; i < zgb.model.num_reactions(); ++i) {
    std::size_t brute = 0;
    for (SiteIndex s = 0; s < cfg.size(); ++s) {
      if (zgb.model.reaction(i).enabled(sim.configuration(), s)) ++brute;
    }
    EXPECT_EQ(sim.enabled_count(i), brute) << zgb.model.reaction(i).name();
  }
}

TEST(Vssm, EnabledSetsStayConsistentAfterManyEvents) {
  auto zgb = models::make_zgb();
  Configuration cfg(Lattice(10, 10), 3, zgb.vacant);
  VssmSimulator sim(zgb.model, std::move(cfg), 2);
  for (int i = 0; i < 3000; ++i) sim.mc_step();
  for (ReactionIndex i = 0; i < zgb.model.num_reactions(); ++i) {
    std::size_t brute = 0;
    for (SiteIndex s = 0; s < sim.configuration().size(); ++s) {
      if (zgb.model.reaction(i).enabled(sim.configuration(), s)) ++brute;
    }
    ASSERT_EQ(sim.enabled_count(i), brute)
        << "type " << zgb.model.reaction(i).name() << " after 3000 events";
  }
}

TEST(Vssm, OneEventPerStep) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  VssmSimulator sim(m, Configuration(Lattice(8, 8), 2, 0), 3);
  const double t0 = sim.time();
  sim.mc_step();
  EXPECT_EQ(sim.counters().executed, 1u);
  EXPECT_EQ(sim.counters().steps, 1u);
  EXPECT_GT(sim.time(), t0);
}

TEST(Vssm, TotalEnabledRate) {
  const ReactionModel m = ads_des_model(2.0, 0.5);
  VssmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 4);
  // All 16 sites vacant: only adsorption enabled.
  EXPECT_DOUBLE_EQ(sim.total_enabled_rate(), 16 * 2.0);
}

TEST(Vssm, EquilibriumCoverage) {
  const double ka = 1.0, kd = 0.5;
  const ReactionModel m = ads_des_model(ka, kd);
  VssmSimulator sim(m, Configuration(Lattice(32, 32), 2, 0), 5);
  sim.advance_to(30.0);
  double avg = 0;
  const int samples = 200;
  for (int i = 0; i < samples; ++i) {
    for (int k = 0; k < 20; ++k) sim.mc_step();
    avg += sim.configuration().coverage(1);
  }
  avg /= samples;
  EXPECT_NEAR(avg, ka / (ka + kd), 0.02);
}

TEST(Vssm, StalledInAbsorbingState) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));  // irreversible
  VssmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 6);
  sim.advance_to(1000.0);
  EXPECT_DOUBLE_EQ(sim.configuration().coverage(1), 1.0);
  EXPECT_TRUE(sim.stalled());
  EXPECT_GE(sim.time(), 1000.0);
  // Exactly one event per site was needed.
  EXPECT_EQ(sim.counters().executed, 16u);
}

TEST(Vssm, RatioOfExecutionsFollowsEnabledRates) {
  // Always-enabled no-op reactions: counts must follow the rates.
  ReactionModel m(SpeciesSet({"A"}));
  m.add(ReactionType("r4", 4.0, {exact({0, 0}, 0, 0)}));
  m.add(ReactionType("r1", 1.0, {exact({0, 0}, 0, 0)}));
  VssmSimulator sim(m, Configuration(Lattice(6, 6), 1, 0), 7);
  for (int i = 0; i < 50000; ++i) sim.mc_step();
  const auto& per = sim.counters().executed_per_type;
  const double frac = static_cast<double>(per[0]) /
                      static_cast<double>(per[0] + per[1]);
  EXPECT_NEAR(frac, 0.8, 0.01);
}

TEST(Vssm, SameSeedSameTrajectory) {
  auto zgb = models::make_zgb();
  VssmSimulator a(zgb.model, Configuration(Lattice(8, 8), 3, zgb.vacant), 11);
  VssmSimulator b(zgb.model, Configuration(Lattice(8, 8), 3, zgb.vacant), 11);
  for (int i = 0; i < 500; ++i) {
    a.mc_step();
    b.mc_step();
  }
  EXPECT_EQ(a.configuration(), b.configuration());
  EXPECT_DOUBLE_EQ(a.time(), b.time());
}

TEST(Vssm, SelectTypeSkipsTrailingEmptyBand) {
  // 4x4 all vacant: "ads" enabled everywhere (band 0.25 * 16 = 4), "des"
  // enabled nowhere (band 0). The old selector fell through to the final
  // type whenever the scaled target consumed every nonzero band, silently
  // wasting the event on a type with an empty enabled set.
  const ReactionModel m = ads_des_model(0.25, 1.0);
  VssmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 8);
  const double total = sim.total_enabled_rate();
  ASSERT_DOUBLE_EQ(total, 4.0);
  EXPECT_EQ(sim.select_type(0.0, total), 0u);
  EXPECT_EQ(sim.select_type(std::nextafter(1.0, 0.0), total), 0u);
  EXPECT_EQ(sim.select_type(1.0, total), 0u);  // target == total boundary
}

TEST(Vssm, SelectTypeSkipsInteriorEmptyBand) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des", 2.0, {exact({0, 0}, 1, 0)}));  // enabled nowhere
  m.add(ReactionType("noop", 1.0, {exact({0, 0}, 0, 0)}));
  VssmSimulator sim(m, Configuration(Lattice(4, 4), 2, 0), 9);
  const double total = sim.total_enabled_rate();
  ASSERT_DOUBLE_EQ(total, 32.0);
  for (int i = 0; i <= 64; ++i) {
    EXPECT_NE(sim.select_type(i / 64.0, total), 1u) << "u = " << i / 64.0;
  }
}

TEST(Vssm, SelectTypeSentinelWhenNothingEnabled) {
  ReactionModel m(SpeciesSet({"*", "A"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));
  VssmSimulator sim(m, Configuration(Lattice(2, 2), 2, 1), 10);  // all occupied
  EXPECT_EQ(sim.select_type(0.5, 0.0), m.num_reactions());
}

TEST(Vssm, EventsNotWastedOnEmptyFinalBand) {
  // Irreversible adsorption plus a never-enabled final type: every step
  // must execute a real adsorption until the lattice is full.
  ReactionModel m(SpeciesSet({"*", "A", "B"}));
  m.add(ReactionType("ads", 1.0, {exact({0, 0}, 0, 1)}));
  m.add(ReactionType("des_b", 5.0, {exact({0, 0}, 2, 0)}));  // no B ever exists
  VssmSimulator sim(m, Configuration(Lattice(4, 4), 3, 0), 11);
  for (int i = 0; i < 16; ++i) sim.mc_step();
  EXPECT_EQ(sim.counters().executed, 16u);
  EXPECT_EQ(sim.counters().executed_per_type[1], 0u);
  EXPECT_DOUBLE_EQ(sim.configuration().coverage(1), 1.0);
}

TEST(Vssm, NameIsVssm) {
  const ReactionModel m = ads_des_model(1.0, 1.0);
  VssmSimulator sim(m, Configuration(Lattice(2, 2), 2, 0), 1);
  EXPECT_EQ(sim.name(), "VSSM");
}

}  // namespace
}  // namespace casurf
